"""Tests for the command-line interface (repro.cli)."""

import json
import os

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_conditions_paper_example(capsys):
    assert main(["conditions"]) == 0
    out = capsys.readouterr().out
    assert "122 dropped packets" in out
    assert "278 ms" in out


def test_conditions_drain_keeps_up(capsys):
    assert main(["conditions", "--rate", "100", "--drain", "100"]) == 0
    out = capsys.readouterr().out
    assert "never overflows" in out


def test_run_all_list_prints_registry(capsys):
    from repro.experiments.runner import REGISTRY

    assert main(["run-all", "--list"]) == 0
    out = capsys.readouterr().out
    for name in REGISTRY:
        assert name in out


def test_run_all_rejects_unknown_job(capsys):
    assert main(["run-all", "--jobs", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_all_rejects_empty_jobs(capsys):
    # "--jobs ''" must not silently fall through to the full registry
    assert main(["run-all", "--jobs", ""]) == 2
    assert "no experiments" in capsys.readouterr().err


def test_run_all_rejects_vacuous_seed_count(capsys):
    assert main(["run-all", "--jobs", "validation", "--seeds", "0"]) == 2
    assert "nothing to run" in capsys.readouterr().err


def test_run_all_executes_subset_and_writes_records(tmp_path, capsys):
    from repro.experiments.record import load_records

    out_file = str(tmp_path / "records.json")
    status = main(["run-all", "--jobs", "validation", "--quick",
                   "--workers", "2", "--out", out_file])
    assert status == 0
    printed = capsys.readouterr().out
    assert "1 ok, 0 failed" in printed
    records = load_records(out_file)
    assert list(records) == ["validation[workloads=[2000, 7000]]@s42"]


def test_run_streaming_rejects_export(capsys):
    """--out exports per-request records, which --streaming folds away:
    the combination must fail fast with a one-line error."""
    assert main(["run", "fig03", "--streaming", "--out", "raw"]) == 2
    err = capsys.readouterr().err
    assert len(err.strip().splitlines()) == 1
    assert "--streaming" in err


def test_run_all_streaming_rejects_exact_record_experiments(capsys):
    assert main(["run-all", "--jobs", "fig02,validation",
                 "--streaming", "--quick"]) == 2
    err = capsys.readouterr().err
    assert len(err.strip().splitlines()) == 1
    assert "fig02" in err
    assert "--jobs" in err  # tells the user how to exclude it


@pytest.mark.integration
@pytest.mark.slow
def test_run_all_streaming_executes(tmp_path, capsys):
    from repro.experiments.record import load_records

    out_file = str(tmp_path / "records.json")
    status = main(["run-all", "--jobs", "validation", "--quick",
                   "--streaming", "--out", out_file])
    assert status == 0
    records = load_records(out_file)
    (record,) = records.values()
    assert record["params"]["streaming"] is True


@pytest.mark.integration
@pytest.mark.slow
def test_diagnose_warns_on_event_recorder_eviction(tmp_path, capsys):
    """A too-small --events capacity must be called out loudly: the
    exported event log silently misses the run's beginning otherwise."""
    out_dir = str(tmp_path / "raw")
    status = main(["diagnose", "fig01", "--workload", "1000",
                   "--duration", "8", "--out", out_dir,
                   "--events", "500"])
    assert status == 0
    captured = capsys.readouterr()
    assert "WARNING" in captured.err
    assert "evicted" in captured.err
    assert "--events" in captured.err            # the remediation hint
    assert "oldest events beyond capacity" in captured.out
    assert os.path.exists(os.path.join(out_dir, "fig01_trace.json"))


@pytest.mark.integration
@pytest.mark.slow
def test_diagnose_no_warning_when_capacity_suffices(tmp_path, capsys):
    out_dir = str(tmp_path / "raw")
    status = main(["diagnose", "fig01", "--workload", "1000",
                   "--duration", "8", "--out", out_dir])
    assert status == 0
    assert "WARNING" not in capsys.readouterr().err


def test_diagnose_rejects_bogus_variant(capsys):
    """An unknown variant must fail fast with a one-line error that
    lists the valid choices — before any simulation runs."""
    assert main(["diagnose", "scaleout", "--variant", "bogus"]) == 2
    err = capsys.readouterr().err
    assert len(err.strip().splitlines()) == 1
    assert "bogus" in err
    from repro.experiments import scaleout

    for variant in scaleout.VARIANTS:
        assert variant in err


def test_diagnose_rejects_bogus_fanout_variant(capsys):
    assert main(["diagnose", "fanout", "--variant", "allof"]) == 2
    err = capsys.readouterr().err
    assert len(err.strip().splitlines()) == 1
    assert "allof" in err
    from repro.experiments import fanout

    for variant in fanout.VARIANTS:
        assert variant in err


def test_diagnose_rejects_bogus_policy_matrix_variant(capsys):
    assert main(["diagnose", "policy_matrix", "--variant", "nope"]) == 2
    err = capsys.readouterr().err
    assert "nope" in err
    assert "shed_web" in err


def test_diagnose_rejects_bogus_cache_storage_variant(capsys):
    assert main(["diagnose", "cache_storage", "--variant", "warm"]) == 2
    err = capsys.readouterr().err
    assert len(err.strip().splitlines()) == 1
    assert "warm" in err
    from repro.experiments import cache_storage

    for variant in cache_storage.VARIANTS:
        assert variant in err


def _beat(sim_time):
    """The smallest heartbeat dict render_heartbeats accepts."""
    return {"sim_time": sim_time, "requests": 100, "throughput_rps": 50.0,
            "drops": 0, "completed": 95, "failed": 0, "retries": 0,
            "sheds": 0, "hedges": 0}


def test_watch_renders_heartbeat_file(tmp_path, capsys):
    path = tmp_path / "beats.jsonl"
    path.write_text(json.dumps(_beat(1.0)) + "\n"
                    + json.dumps(_beat(2.0)) + "\n")
    assert main(["watch", str(path)]) == 0
    out = capsys.readouterr().out
    assert "1.0" in out
    assert "2.0" in out


def test_watch_tolerates_half_written_trailing_line(tmp_path, capsys):
    """A live writer may be mid-heartbeat when watch reads the file:
    the complete prefix must render instead of crashing on the tail."""
    path = tmp_path / "beats.jsonl"
    path.write_text(json.dumps(_beat(1.0)) + "\n"
                    + json.dumps(_beat(2.0)) + "\n"
                    + '{"sim_time": 3.0, "requ')  # torn mid-write
    assert main(["watch", str(path)]) == 0
    captured = capsys.readouterr()
    assert captured.err == ""
    assert "1.0" in captured.out
    assert "2.0" in captured.out


def test_watch_only_a_torn_line_is_not_an_error(tmp_path, capsys):
    """Racing the writer to the very first heartbeat: nothing complete
    yet is a retry-later situation, not a parse failure."""
    path = tmp_path / "beats.jsonl"
    path.write_text('{"sim_ti')
    assert main(["watch", str(path)]) == 0
    assert "no heartbeats" in capsys.readouterr().out


def test_watch_empty_file_is_not_an_error(tmp_path, capsys):
    path = tmp_path / "beats.jsonl"
    path.write_text("")
    assert main(["watch", str(path)]) == 0
    assert "no heartbeats" in capsys.readouterr().out


def test_watch_still_rejects_mid_file_corruption(tmp_path, capsys):
    """Only the *trailing* line may be torn; garbage earlier in the
    file means it is not heartbeat JSONL at all."""
    path = tmp_path / "beats.jsonl"
    path.write_text("definitely not json\n" + json.dumps(_beat(1.0)) + "\n")
    assert main(["watch", str(path)]) == 2
    assert "not heartbeat JSONL" in capsys.readouterr().err


def test_watch_missing_file_is_an_error(tmp_path, capsys):
    assert main(["watch", str(tmp_path / "absent.jsonl")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.integration
@pytest.mark.slow
def test_run_timeline_with_export(tmp_path, capsys):
    out_dir = str(tmp_path / "raw")
    status = main(["run", "fig03", "--duration", "30", "--out", out_dir])
    assert status == 0
    printed = capsys.readouterr().out
    assert "Fig 3" in printed
    assert "CLAIM CHECK: ok" in printed
    for suffix in ("cpu.csv", "queues.csv", "requests.csv", "summary.json"):
        assert os.path.exists(os.path.join(out_dir, f"fig03_{suffix}"))
    payload = json.loads(
        open(os.path.join(out_dir, "fig03_summary.json")).read()
    )
    assert payload["summary"]["dropped_packets"] > 0
