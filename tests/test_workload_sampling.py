"""Tests for budgeted trace sampling (repro.workload.sampling)."""

import pytest

from repro.core import Scenario
from repro.metrics.live import LiveConfig
from repro.metrics.trace import RequestRecord
from repro.topology import SystemConfig
from repro.workload.sampling import TraceSampler

from conftest import tiny_mix


def record(request_id, rt=0.1, failed=False, drops=(), sheds=()):
    return RequestRecord(request_id, "BrowseStories", 10.0, 10.0 + rt,
                         failed=failed, drops=list(drops),
                         sheds=list(sheds))


def trace(events=3):
    return [(10.0 + 0.01 * i, "event", f"e{i}") for i in range(events)]


def test_parameter_validation():
    with pytest.raises(ValueError):
        TraceSampler(rate=-0.1)
    with pytest.raises(ValueError):
        TraceSampler(rate=1.5)
    with pytest.raises(ValueError):
        TraceSampler(budget=0)


def test_head_sampling_is_deterministic_and_seeded():
    a = TraceSampler(rate=0.25, seed=7)
    b = TraceSampler(rate=0.25, seed=7)
    c = TraceSampler(rate=0.25, seed=8)
    ids = list(range(2000))
    picks_a = [i for i in ids if a.wants(i)]
    assert picks_a == [i for i in ids if b.wants(i)]      # stable
    assert picks_a != [i for i in ids if c.wants(i)]      # seed matters
    # the hash hits the target rate within sampling noise
    assert len(picks_a) == pytest.approx(0.25 * len(ids), rel=0.2)


def test_rate_extremes():
    keep_all = TraceSampler(rate=1.0)
    keep_none = TraceSampler(rate=0.0)
    assert all(keep_all.wants(i) for i in range(100))
    assert not any(keep_none.wants(i) for i in range(100))


def test_anomalous_always_kept_regardless_of_hash():
    sampler = TraceSampler(rate=0.0, budget=100)
    assert sampler.observe(record(1, failed=True), trace())
    assert sampler.observe(record(2, rt=5.0), trace())               # VLRT
    assert sampler.observe(record(3, drops=[(10.0, "web")]), trace())
    assert sampler.observe(record(4, sheds=[(10.0, "web")]), trace())
    assert not sampler.observe(record(5), trace())                   # normal
    assert sampler.kept_anomalous == 4
    assert sampler.sampled_normal == 0
    assert sampler.considered == 5
    assert len(sampler.anomalous_traces()) == 4
    assert sampler.normal_traces() == []


def test_unkept_record_has_no_trace_reference():
    sampler = TraceSampler(rate=0.0, budget=10)
    rec = record(1)
    assert not sampler.observe(rec, trace())
    assert rec.trace is None
    assert sampler.retained == 0
    assert sampler.retained_events == 0


def test_budget_evicts_oldest_normal_first():
    sampler = TraceSampler(rate=1.0, budget=3)
    normals = [record(i) for i in range(3)]
    for rec in normals:
        sampler.observe(rec, trace())
    assert sampler.retained == 3
    anomaly = record(99, failed=True)
    sampler.observe(anomaly, trace())
    # over budget by one: the oldest normal exemplar paid for it
    assert sampler.retained == 3
    assert sampler.evicted_normal == 1
    assert normals[0].trace is None
    assert normals[1].trace is not None
    assert anomaly.trace is not None


def test_budget_evicts_anomalous_only_after_normals_are_gone():
    sampler = TraceSampler(rate=0.0, budget=2)
    anomalies = [record(i, failed=True) for i in range(4)]
    for rec in anomalies:
        sampler.observe(rec, trace())
    assert sampler.retained == 2
    assert sampler.evicted_normal == 0
    assert sampler.evicted_anomalous == 2
    assert anomalies[0].trace is None
    assert anomalies[1].trace is None
    assert anomalies[2].trace is not None
    assert anomalies[3].trace is not None


def test_retained_events_tracks_evictions():
    sampler = TraceSampler(rate=1.0, budget=2)
    sampler.observe(record(1), trace(events=5))
    sampler.observe(record(2), trace(events=7))
    assert sampler.retained_events == 12
    sampler.observe(record(3), trace(events=2))
    # record 1 (5 events) evicted
    assert sampler.retained_events == 9
    assert sampler.evicted == 1


def test_counters_schema():
    sampler = TraceSampler(rate=1.0, budget=2)
    sampler.observe(record(1), trace())
    counters = sampler.counters()
    assert counters == {
        "considered": 1,
        "sampled_normal": 1,
        "kept_anomalous": 0,
        "retained": 1,
        "budget": 2,
        "evicted_normal": 0,
        "evicted_anomalous": 0,
        "retained_events": 3,
    }


# ----------------------------------------------------------------------
# generator integration: sampler as the keep_traces policy
# ----------------------------------------------------------------------
def tiny_config(**overrides):
    defaults = dict(
        nx=0, seed=11,
        web_threads=8, app_threads=8, db_threads=4,
        web_backlog=4, app_backlog=4, db_backlog=4,
        db_pool_size=4, web_spawn_extra_process=False,
        interaction_specs=tiny_mix(stochastic=True),
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def run_sampled(rate=0.5, seed=3, budget=1000, **scenario_kwargs):
    """A tiny open-loop run with the live sampler enabled; the sampler
    reaches the generators through ``Scenario.run`` exactly as
    ``repro run --live --sample-rate`` wires it."""
    live = LiveConfig(interval=2.0, sample_rate=rate, trace_budget=budget)
    scenario = Scenario(tiny_config(), clients=40, think_mean=1.0,
                        duration=8.0, warmup=1.0, live=live,
                        **scenario_kwargs)
    scenario.with_open_loop(200.0)
    result = scenario.run()
    sampler = result.telemetry.sampler
    # seed is fixed at construction by LiveConfig.build (seed=0); for
    # seeded variants the direct-generator test below covers it
    assert sampler is not None
    return result, sampler


def test_scenario_wires_sampler_through_generators():
    result, sampler = run_sampled(rate=0.5)
    # result.log is the post-warmup view; the sampler sees every
    # record the generators produced, warmup included
    full = result.system.log.records
    assert sampler.considered == len(full)
    assert sampler.retained > 0
    # records the head sample admitted carry their traces; others none
    with_trace = [r for r in full if r.trace is not None]
    assert len(with_trace) == sampler.retained
    assert all(r.trace for r in with_trace)
    # the head-sampling fraction lands near the configured rate
    normal = [r for r in full if not sampler.is_anomalous(r)]
    if len(normal) > 200:
        kept = sum(1 for r in normal if r.trace is not None)
        assert kept / len(normal) == pytest.approx(0.5, abs=0.15)


def test_scenario_sampling_follows_the_hash_exactly():
    # the retained set is exactly {anomalous} ∪ {hash-admitted}, minus
    # evictions — so a rerun with the same request ids provably keeps
    # the same traces (ids are a process-global counter, hence the
    # check is against the decision rule, not a second in-process run)
    result, sampler = run_sampled(rate=0.2)
    full = result.system.log.records
    assert sampler.evicted == 0
    for rec in full:
        expect = sampler.is_anomalous(rec) or sampler.wants(rec.request_id)
        assert (rec.trace is not None) == expect


def build_population(keep_traces):
    from repro.topology.builder import build_system
    from repro.workload.generators import ClosedLoopPopulation

    system = build_system(tiny_config())
    return ClosedLoopPopulation(
        system.sim, system.fabric, system.entry, system.app, system.log,
        clients=10, think_mean=1.0, keep_traces=keep_traces,
    )


def test_generator_accepts_sampler_and_legacy_strings():
    sampler = TraceSampler(rate=0.5)
    assert build_population(sampler).sampler is sampler
    for policy in (None, "vlrt", "all"):
        population = build_population(policy)
        assert population.sampler is None
        assert population.keep_traces == policy


def test_generator_rejects_unknown_policy():
    with pytest.raises(ValueError):
        build_population("sometimes")


def test_legacy_string_policies_still_work():
    for policy_live, expect_traces in ((None, False),):
        # default (no live config) still applies the "vlrt" policy:
        # a clean tiny run keeps no traces at all
        scenario = Scenario(tiny_config(), clients=40, think_mean=1.0,
                            duration=5.0, warmup=1.0)
        scenario.with_open_loop(100.0)
        result = scenario.run()
        clean = not any(r.failed or r.drops or r.sheds
                        for r in result.log.records)
        if clean:
            assert not any(r.trace for r in result.log.records)
