"""Regression tests for the gather-leg cancel/release race.

``GatherCall._cancel_pending`` withdraws legs still queued on a
connection pool when the quorum barrier settles.  ``Resource.release``
hands a freed unit *directly* to the oldest waiter, so a leg's grant
can trigger in the very instant the quorum settles — its ``_granted``
callback is then already in flight.  Cancelling such a leg must be a
no-op: ``Resource.cancel`` returns False for triggered grants, and the
leg's own settled-race branch in ``_transmit`` hands the connection
back and counts the cancellation.  The buggy variant (marking the leg
done on a False cancel) stranded the granted pool unit forever and
double-counted ``legs_cancelled``; these tests pin the occupancy
invariant — pool outstanding returns to zero once every gather has
settled and drained — white-box and end-to-end, on both servlet
drivers and both request-log modes.
"""

import pytest

from repro.servers.gather import GatherCall, _GatherLeg
from repro.sim import Resource, Simulator
from repro.topology.graph import NodeSpec, build_graph, fan_out


def make_gather(legs):
    """A GatherCall shell with just the state _cancel_pending reads."""
    gather = object.__new__(GatherCall)
    gather.legs = legs
    gather._stats = {"legs_cancelled": 0}
    return gather


# ----------------------------------------------------------------------
# white-box: the exact race, deterministically
# ----------------------------------------------------------------------
def test_cancel_pending_withdraws_a_still_queued_leg():
    sim = Simulator(seed=1)
    pool = Resource(sim, 1, name="edge.pool")
    pool.acquire()                      # some other gather holds the unit
    leg = _GatherLeg(0, (None, pool, "leaf"))
    leg.grant = pool.acquire()          # this leg queues behind it
    assert not leg.grant.triggered
    gather = make_gather([leg])

    gather._cancel_pending()
    assert leg.done is True
    assert leg.grant is None
    assert gather._stats["legs_cancelled"] == 1
    # the holder finishes; the tombstoned grant must not absorb the unit
    pool.release()
    assert pool.in_use == 0
    assert pool.queue_length == 0


def test_cancel_pending_leaves_a_same_instant_granted_leg_alone():
    """release() racing the cancel: the grant triggered in the same
    instant the quorum settled, so the leg's _granted callback is
    already in flight and owns the unit.  _cancel_pending must not
    touch it — the settled-race branch in _transmit releases it."""
    sim = Simulator(seed=1)
    pool = Resource(sim, 1, name="edge.pool")
    pool.acquire()
    leg = _GatherLeg(0, (None, pool, "leaf"))
    leg.grant = pool.acquire()
    gather = make_gather([leg])

    pool.release()                      # unit moves directly to the leg
    assert leg.grant.triggered
    gather._cancel_pending()
    assert leg.done is False            # untouched: not counted cancelled
    assert leg.grant is not None
    assert gather._stats["legs_cancelled"] == 0
    assert pool.in_use == 1             # the unit belongs to the leg now
    # ...until its own settled-race branch hands it back
    pool.release()
    assert pool.in_use == 0
    assert pool.queue_length == 0


def test_cancel_pending_skips_done_and_unqueued_legs():
    sim = Simulator(seed=1)
    pool = Resource(sim, 2, name="edge.pool")
    done_leg = _GatherLeg(0, (None, pool, "leaf"))
    done_leg.done = True
    transmitted = _GatherLeg(1, (None, pool, "leaf"))  # grant is None
    gather = make_gather([done_leg, transmitted])
    gather._cancel_pending()
    assert gather._stats["legs_cancelled"] == 0


# ----------------------------------------------------------------------
# end-to-end: quorum gathers over pooled edges drain to zero occupancy
# ----------------------------------------------------------------------
def _run_pooled_quorum(sync_root, streaming, requests=60, spacing=0.02):
    root = NodeSpec("root", sync=sync_root, threads=64, workers=2, quorum=2)
    # leaf3 is 10x slower than the arrival spacing: its pool=1 edge
    # backs up, so quorums met by leaf1+leaf2 cancel queued leaf3 legs
    leaves = [
        NodeSpec("leaf1", threads=2, pre_work=0.002),
        NodeSpec("leaf2", threads=2, pre_work=0.002),
        NodeSpec("leaf3", threads=2, pre_work=0.2),
    ]
    system = build_graph(fan_out(root, leaves, edge_pool=1), seed=42,
                         streaming=streaming)
    sim = system.sim

    def burst():
        for _ in range(requests):
            sim.process(system._one_request())
            yield spacing

    sim.process(burst())
    # far past the last arrival: every gather settles and drains
    sim.run(until=60.0)
    return system


@pytest.mark.parametrize("sync_root", [True, False])
@pytest.mark.parametrize("streaming", [False, True])
def test_pool_occupancy_returns_to_zero_after_quorum_cancels(
        sync_root, streaming):
    system = _run_pooled_quorum(sync_root, streaming)
    totals = system.gather_totals()
    assert totals["gathers"] > 0
    # edge_pool=1 makes later gathers queue: the barrier actually
    # exercises the cancel path this module regression-tests
    assert totals["legs_cancelled"] > 0
    assert len(system.log) > 0
    pooled_routes = 0
    for name, server in system.server_items():
        for target, pool in getattr(server, "pools", {}).items():
            pooled_routes += 1
            assert pool.in_use == 0, (
                f"{name}->{target}: {pool.in_use} stranded units"
            )
            assert pool.queue_length == 0, (
                f"{name}->{target}: {pool.queue_length} stranded waiters"
            )
    assert pooled_routes == 3           # one pooled edge per leaf


@pytest.mark.parametrize("sync_root", [True, False])
def test_every_leg_is_accounted_exactly_once(sync_root):
    """successes + cancelled + wasted + failures == legs launched:
    double-counting a raced cancel breaks this conservation law."""
    system = _run_pooled_quorum(sync_root, streaming=False)
    totals = system.gather_totals()
    settled = totals["legs_cancelled"] + totals["legs_wasted"]
    # every settled gather met quorum=2 of 3, losing exactly one leg
    assert settled == totals["gathers"]
    assert totals["legs"] == 3 * totals["gathers"]
    assert totals["leg_failures"] == 0
