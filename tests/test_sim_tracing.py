"""Tests for the kernel tracer (repro.sim.tracing)."""

import pytest

from repro.sim import KernelTracer, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=41)


def test_traces_executed_callbacks(sim):
    tracer = KernelTracer(sim)

    def named_callback():
        pass

    sim.call_in(1.0, named_callback)
    sim.call_in(2.0, named_callback)
    sim.run()
    assert tracer.executed == 2
    times = [t for t, _l in tracer.events]
    labels = [l for _t, l in tracer.events]
    assert times == [1.0, 2.0]
    assert all("named_callback" in l for l in labels)


def test_ring_buffer_bounded(sim):
    tracer = KernelTracer(sim, capacity=5)
    for i in range(20):
        sim.call_in(i * 0.1 + 0.1, lambda: None)
    sim.run()
    assert tracer.executed == 20
    assert len(tracer.events) == 5
    assert tracer.events[0][0] == pytest.approx(1.6)  # only the tail kept


def test_annotations_interleave(sim):
    tracer = KernelTracer(sim)
    sim.call_in(1.0, lambda: tracer.annotate("burst starts"))
    sim.run()
    labels = [l for _t, l in tracer.events]
    assert "# burst starts" in labels


def test_window_filters_by_time(sim):
    tracer = KernelTracer(sim)
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.call_in(t, lambda: None)
    sim.run()
    assert len(tracer.window(1.5, 3.5)) == 2


def test_render_shows_recent_events(sim):
    tracer = KernelTracer(sim)
    sim.call_in(1.0, lambda: None)
    sim.run()
    text = tracer.render()
    assert "kernel trace" in text
    assert "t=    1.000000" in text


def test_render_empty(sim):
    tracer = KernelTracer(sim)
    assert "no kernel events" in tracer.render()


def test_detach_restores_step(sim):
    tracer = KernelTracer(sim)
    sim.call_in(1.0, lambda: None)
    sim.run()
    tracer.detach()
    sim.call_in(1.0, lambda: None)
    sim.run()
    assert tracer.executed == 1  # second run untraced
    tracer.detach()  # idempotent


def test_tracer_labels_bound_methods(sim):
    from repro.cpu import Host

    tracer = KernelTracer(sim)
    host = Host(sim, cores=1, name="esxi")
    vm = host.add_vm("vm")
    vm.execute(0.1)
    sim.run()
    labels = [l for _t, l in tracer.events]
    assert any("Host" in l for l in labels)


def test_traced_simulation_unchanged(sim):
    """Tracing must not perturb results: same run with and without."""
    def run_once(traced):
        s = Simulator(seed=9)
        if traced:
            KernelTracer(s)
        hits = []

        def proc():
            for _ in range(5):
                yield s.fork_rng("x").random() * 0.1 + 0.01
                hits.append(s.now)

        s.process(proc())
        s.run()
        return hits

    assert run_once(False) == run_once(True)


def test_capacity_validation(sim):
    with pytest.raises(ValueError):
        KernelTracer(sim, capacity=0)
