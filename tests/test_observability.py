"""End-to-end tests for the observability pipeline.

Three guarantees ride on this file:

1. binding an :class:`EventBus` (with a live recorder) does not perturb
   the simulation — per-request results are identical with and without
   instrumentation;
2. the millibottleneck detector + CTQO attributor explain the fig01 RPC
   configuration's tail: ≥ 90 % of VLRT/dropped requests get a complete
   drop → overflow → millibottleneck chain with the right direction;
3. ``repro diagnose`` wires it all together, including the Perfetto
   trace / JSONL export.
"""

import json
import os

import pytest

from repro.cli import main
from repro.experiments.fig01_histograms import run_one
from repro.sim import EventBus, EventRecorder


def fingerprint(log):
    """Per-request identity of a run (order, timing, outcome).

    Request IDs come from a process-global counter, so two runs in one
    process number differently; compare them relative to the run's
    first ID instead.
    """
    base = min((r.request_id for r in log.records), default=0)
    return [
        (r.request_id - base, r.kind, r.start, r.end, r.attempts,
         tuple(r.drops), r.failed)
        for r in log.records
    ]


def test_instrumentation_does_not_perturb_the_simulation():
    plain = run_one(7000, duration=6.0, warmup=1.0, seed=42)
    bus = EventBus()
    recorder = EventRecorder(bus)
    instrumented = run_one(7000, duration=6.0, warmup=1.0, seed=42, bus=bus)
    assert recorder.recorded > 0, "hooks should actually publish"
    assert fingerprint(instrumented["result"].log) == fingerprint(
        plain["result"].log
    )
    assert instrumented["result"].summary() == plain["result"].summary()


@pytest.mark.integration
def test_fig01_attribution_meets_coverage_bar():
    panel = run_one(7000, duration=20.0, warmup=2.0, seed=42)
    result = panel["result"]
    assert panel["vlrt"] > 100, "run too short to exercise the tail"
    report = result.attribution()
    assert report.coverage >= 0.90, report.render()
    # the fig01 story: consolidation bottleneck at the app tier pushes
    # back until Apache's accept queue overflows -> upstream CTQO
    assert report.directions().most_common(1)[0][0] == "upstream"
    assert report.drop_sites().most_common(1)[0][0] == "apache"
    for chain in report.complete:
        assert chain.overflow.covers(chain.drop_time,
                                     result.monitor.interval + 1e-9)
        assert chain.millibottleneck.kind in ("cpu", "io")


def test_diagnose_cli_prints_chains(capsys):
    assert main(["diagnose", "fig01", "--duration", "12"]) == 0
    out = capsys.readouterr().out
    assert "=== diagnosis ===" in out
    assert "CTQO attribution (automated Fig 4)" in out
    assert "tail requests fully attributed" in out


@pytest.mark.integration
def test_diagnose_cli_exports_trace_artifacts(tmp_path, capsys):
    out_dir = str(tmp_path / "artifacts")
    assert main(["diagnose", "fig03", "--duration", "20",
                 "--out", out_dir]) == 0
    printed = capsys.readouterr().out
    assert "bus events" in printed
    for name in ("fig03_trace.json", "fig03_events.jsonl",
                 "fig03_requests.csv", "fig03_summary.json"):
        assert os.path.exists(os.path.join(out_dir, name)), name
    payload = json.loads(
        open(os.path.join(out_dir, "fig03_trace.json")).read()
    )
    phases = {e["ph"] for e in payload["traceEvents"]}
    assert {"M", "C", "X", "i"} <= phases
    with open(os.path.join(out_dir, "fig03_events.jsonl")) as handle:
        first = json.loads(next(handle))
    assert set(first) == {"t", "kind", "source", "value"}
