"""Tests for the scenario runner and NX sweep (repro.core.evaluation)."""

import pytest

from repro.core import Scenario, nx_sweep
from repro.topology import SystemConfig

from conftest import tiny_mix


def tiny_config(nx=0, **overrides):
    defaults = dict(
        nx=nx, seed=11,
        web_threads=8, app_threads=8, db_threads=4,
        web_backlog=4, app_backlog=4, db_backlog=4,
        db_pool_size=4, web_spawn_extra_process=False,
        lite_q_depth=64, xtomcat_workers=8,
        xmysql_slots=2, xmysql_queue=32,
        interaction_specs=tiny_mix(stochastic=True),
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def tiny_scenario(nx=0, **kwargs):
    return Scenario(tiny_config(nx=nx), clients=60, think_mean=1.0,
                    duration=10.0, warmup=2.0, **kwargs)


def test_plain_scenario_runs_clean():
    result = tiny_scenario().run()
    summary = result.summary()
    assert summary["requests"] > 200
    assert summary["failed"] == 0
    assert result.dropped_packets == 0
    # closed loop: X ~ N/(Z+R) ~ 60 req/s
    assert summary["throughput_rps"] == pytest.approx(60, rel=0.2)


def test_warmup_excluded_from_log():
    result = tiny_scenario().run()
    assert all(r.start >= 2.0 for r in result.log.records)


def test_duration_must_exceed_warmup():
    with pytest.raises(ValueError):
        Scenario(tiny_config(), duration=5.0, warmup=5.0)


def test_consolidation_requires_exactly_one_trigger():
    scenario = tiny_scenario()
    with pytest.raises(ValueError):
        scenario.with_consolidation("app")
    with pytest.raises(ValueError):
        scenario.with_consolidation("app", times=[1.0], period=5.0)


def test_consolidation_produces_drops_on_tiny_sync_system():
    result = (
        tiny_scenario()
        .with_consolidation("app", times=[4.0, 7.0], burst_cpu=2.0,
                            burst_jobs=40, shares=200.0)
        .run()
    )
    assert result.dropped_packets > 0
    assert result.drops["apache"] > 0  # upstream CTQO
    assert len(result.injectors) == 1
    assert result.injectors[0].burst_times == [4.0, 7.0]


def test_consolidation_antagonist_monitored():
    result = (
        tiny_scenario()
        .with_consolidation("app", times=[4.0])
        .run()
    )
    assert "sysbursty-mysql" in result.monitor.cpu


def test_log_flush_scenario():
    result = (
        tiny_scenario()
        .with_log_flush("db", period=4.0, duration=0.5, offset=3.0)
        .run()
    )
    assert result.injectors[0].flush_times == [3.0, 7.0]
    iowait = result.iowait_series("db")
    assert iowait.max() == pytest.approx(1.0)


def test_client_burst_scenario():
    result = (
        tiny_scenario()
        .with_client_burst(times=[5.0], batch_size=10,
                           operation="ViewStory")
        .run()
    )
    bursty = [r for r in result.log.records
              if r.kind == "ViewStory" and abs(r.start - 5.0) < 1e-6]
    assert len(bursty) == 10


def test_run_result_accessors():
    result = tiny_scenario().run()
    assert set(result.queue_max()) == {"apache", "tomcat", "mysql"}
    assert 0 < result.highest_avg_cpu() <= 1.0
    assert result.cpu_series("app") is result.monitor.cpu["tomcat"]
    assert result.measured_duration == pytest.approx(8.0)


def test_millibottleneck_detection_from_run():
    result = (
        tiny_scenario()
        .with_log_flush("db", period=4.0, duration=0.5, offset=3.0)
        .run()
    )
    episodes = result.millibottlenecks(threshold=0.9, min_duration=0.2)
    io_episodes = [e for e in episodes if e.kind == "io"]
    assert len(io_episodes) == 2
    assert io_episodes[0].resource == "mysql"


def test_ctqo_events_classified_from_run():
    result = (
        tiny_scenario()
        .with_consolidation("app", times=[4.0, 7.0], burst_cpu=2.0,
                            burst_jobs=40, shares=200.0)
        .run()
    )
    events = result.ctqo_events(threshold=0.9, min_duration=0.2)
    upstream = [e for e in events if e.direction == "upstream"]
    assert upstream, f"no upstream CTQO events in {events}"
    assert upstream[0].dropping_server == "apache"


def test_nx_sweep_runs_all_levels():
    results = nx_sweep(
        lambda nx: tiny_scenario(nx=nx).with_consolidation(
            "app", times=[4.0], burst_cpu=2.0, burst_jobs=40, shares=200.0
        ),
        levels=(0, 3),
    )
    assert set(results) == {0, 3}
    assert results[0].config.nx == 0
    assert results[3].config.nx == 3
    # the paper's punchline on a tiny system: sync drops, async does not
    assert results[0].dropped_packets > 0
    assert results[3].dropped_packets == 0


def test_gc_pause_scenario_wiring():
    result = (
        tiny_scenario()
        .with_gc_pauses("app", period=3.0, min_pause=0.3, max_pause=0.5)
        .run()
    )
    injector = result.injectors[0]
    assert injector.pauses, "no GC pauses fired"
    assert result.iowait_series("app").max() == pytest.approx(1.0)


def test_network_jam_scenario_wiring():
    result = (
        tiny_scenario()
        .with_network_jam("app", period=4.0, duration=0.5, offset=3.0)
        .run()
    )
    injector = result.injectors[0]
    assert injector.jam_times == [3.0, 7.0]
    assert injector.held_packets == 0  # all released by the end
