"""Unit tests for events (repro.sim.events)."""

import pytest

from repro.sim import Simulator, StaleEventError


@pytest.fixture
def sim():
    return Simulator(seed=7)


def test_event_starts_pending(sim):
    ev = sim.event()
    assert not ev.triggered
    assert not ev.ok
    assert not ev.failed


def test_succeed_carries_value(sim):
    ev = sim.event()
    ev.succeed("payload")
    assert ev.triggered and ev.ok and not ev.failed
    assert ev.value == "payload"


def test_fail_carries_exception(sim):
    ev = sim.event()
    exc = RuntimeError("boom")
    ev.fail(exc)
    assert ev.failed and not ev.ok
    assert ev.value is exc


def test_fail_requires_exception_instance(sim):
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_double_trigger_raises(sim):
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(StaleEventError):
        ev.succeed(2)
    with pytest.raises(StaleEventError):
        ev.fail(RuntimeError())


def test_value_of_pending_event_raises(sim):
    ev = sim.event()
    with pytest.raises(StaleEventError):
        _ = ev.value


def test_callbacks_run_in_registration_order(sim):
    ev = sim.event()
    hits = []
    ev.add_callback(lambda e: hits.append("a"))
    ev.add_callback(lambda e: hits.append("b"))
    ev.succeed()
    assert hits == ["a", "b"]


def test_callback_on_triggered_event_runs_immediately(sim):
    ev = sim.event()
    ev.succeed(3)
    hits = []
    ev.add_callback(lambda e: hits.append(e.value))
    assert hits == [3]


def test_timeout_succeeds_at_right_time(sim):
    ev = sim.timeout(2.5, value="done")
    times = []
    ev.add_callback(lambda e: times.append((sim.now, e.value)))
    sim.run()
    assert times == [(2.5, "done")]


def test_negative_timeout_raises(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_any_of_triggers_on_first_child(sim):
    fast = sim.timeout(1.0, value="fast")
    slow = sim.timeout(5.0, value="slow")
    both = sim.any_of([fast, slow])
    results = []
    both.add_callback(lambda e: results.append((sim.now, e.value)))
    sim.run()
    assert results == [(1.0, {fast: "fast"})]


def test_any_of_fails_if_child_fails_first(sim):
    bad = sim.event()
    slow = sim.timeout(5.0)
    both = sim.any_of([bad, slow])
    sim.call_in(1.0, bad.fail, RuntimeError("x"))
    sim.run()
    assert both.failed


def test_all_of_waits_for_all_children(sim):
    evs = [sim.timeout(t, value=t) for t in (1.0, 3.0, 2.0)]
    combined = sim.all_of(evs)
    results = []
    combined.add_callback(lambda e: results.append((sim.now, e.value)))
    sim.run()
    assert results == [(3.0, {evs[0]: 1.0, evs[1]: 3.0, evs[2]: 2.0})]


def test_all_of_empty_succeeds_immediately(sim):
    combined = sim.all_of([])
    assert combined.ok
    assert combined.value == {}


def test_any_of_ignores_later_children(sim):
    first = sim.timeout(1.0, value=1)
    second = sim.timeout(2.0, value=2)
    combined = sim.any_of([first, second])
    sim.run()
    assert combined.ok
    assert combined.value == {first: 1}
