"""Scheduler equivalence: calendar queue vs the reference binary heap.

The calendar-queue :class:`~repro.sim.kernel.Simulator` must execute
*exactly* the same callbacks, in the same order, at the same float
times, as the reference :class:`~repro.sim.kernel.HeapSimulator` — for
any schedule, any geometry, any interleaving of ``run(until=...)``
phases.  Determinism of every golden record in this repository rests on
that equivalence, so these tests drive both kernels with randomized
scripts (absolute/relative scheduling, priorities, same-instant ties,
bulk batches, nested scheduling from callbacks, far-future overflow
times) and require byte-identical traces.

The slow test at the bottom is the full lock: the whole quick registry
replayed under ``REPRO_KERNEL=heap`` must reproduce
``tests/data/golden_registry_quick.json`` byte-identically, exactly as
the default calendar kernel does in ``test_policy_equivalence``.
"""

import json
import os
import random

import pytest

from repro.sim import HeapSimulator, Simulator
from repro.sim.kernel import KERNEL_ENV

#: wheel geometries under test: the default, sub-event-rate tiny
#: buckets (maximal rollover churn), one huge bucket (degenerates to a
#: heap per bucket) and a single-bucket wheel (everything overflows)
GEOMETRIES = (
    {},
    {"bucket_width": 0.05, "wheel_buckets": 8},
    {"bucket_width": 1000.0, "wheel_buckets": 4},
    {"bucket_width": 0.001, "wheel_buckets": 1},
)


@pytest.fixture(autouse=True)
def _no_kernel_env(monkeypatch):
    # the explicit constructors below must not be re-dispatched
    monkeypatch.delenv(KERNEL_ENV, raising=False)


def build_script(seed, ops=150):
    """Pre-draw a schedule script so both kernels replay identical ops.

    Times mix all the interesting shapes: sub-bucket jitter, exact
    bucket-boundary multiples, same-instant duplicates and far-future
    overflow landings.
    """
    rng = random.Random(seed)
    script = []
    time_pool = [0.0]
    for i in range(ops):
        base = rng.choice(time_pool)
        shape = rng.random()
        if shape < 0.25:
            when = base + rng.random() * 0.01
        elif shape < 0.45:
            # exact bucket boundaries of every geometry under test
            when = base + rng.randrange(1, 50) * 0.05
        elif shape < 0.60:
            when = base  # same-instant tie
        elif shape < 0.80:
            when = base + rng.random() * 5.0
        else:
            when = base + rng.random() * 200.0  # overflow territory
        time_pool.append(when)
        kind = rng.random()
        priority = rng.choice((-2, -1, 0, 0, 0, 1, 2))
        nested = [
            (rng.random() * rng.choice((0.01, 1.0, 30.0)),
             f"n{i}.{j}", rng.choice((-1, 0, 1)))
            for j in range(rng.randrange(3))
        ]
        if kind < 0.55:
            script.append(("at", when, f"a{i}", priority, nested))
        elif kind < 0.8:
            script.append(("in", when, f"i{i}", priority, nested))
        else:
            batch = sorted(
                when + rng.random() * 10.0 for _ in range(rng.randrange(1, 6))
            )
            script.append(("batch", batch, f"b{i}"))
    return script


def run_script(sim, script, until_points=()):
    """Replay ``script`` on ``sim``; returns the execution trace."""
    trace = []

    def fire(label, nested):
        trace.append((sim.now, label))
        for delay, sub_label, sub_priority in nested:
            sim.call_in(delay, fire, sub_label, (), priority=sub_priority)

    for op in script:
        if op[0] == "at":
            _kind, when, label, priority, nested = op
            sim.call_at(when, fire, label, nested, priority=priority)
        elif op[0] == "in":
            _kind, delay, label, priority, nested = op
            sim.call_in(delay, fire, label, nested, priority=priority)
        else:
            _kind, batch, label = op
            # batch callbacks take no args: close over empty nesting
            sim.call_at_batch(batch, lambda label=label: trace.append(
                (sim.now, label)))
    for until in until_points:
        sim.run(until=until)
        trace.append(("run-until", sim.now, sim.executed_events))
    sim.run()
    trace.append(("end", sim.now, sim.executed_events))
    return trace


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("geometry", GEOMETRIES,
                         ids=["default", "tiny", "huge", "one-bucket"])
def test_random_schedules_trace_identically(seed, geometry):
    script = build_script(seed)
    heap_trace = run_script(HeapSimulator(seed=0), script)
    wheel_trace = run_script(Simulator(seed=0, **geometry), script)
    assert wheel_trace == heap_trace


@pytest.mark.parametrize("seed", range(6))
def test_run_until_phases_trace_identically(seed):
    """Interleaved bounded runs (stopping mid-schedule, re-scheduling
    nothing in between) advance both kernels through identical states."""
    script = build_script(seed + 1000, ops=80)
    until_points = (0.5, 7.0, 33.0, 150.0)
    heap_trace = run_script(HeapSimulator(seed=0), script, until_points)
    wheel_trace = run_script(
        Simulator(seed=0, bucket_width=0.25, wheel_buckets=16),
        script, until_points,
    )
    assert wheel_trace == heap_trace


def test_same_instant_priority_ties_match():
    """Priorities at one instant order before insertion sequence, the
    same way on both kernels (including negative priorities)."""
    results = []
    for make in (HeapSimulator, Simulator):
        sim = make(seed=0)
        hits = []
        for i, priority in enumerate((1, 0, -1, 0, 2, -2, 0)):
            sim.call_at(3.0, hits.append, (priority, i), priority=priority)
        sim.run()
        results.append(hits)
    assert results[0] == results[1]
    assert results[0] == sorted(results[0])


@pytest.mark.parametrize("make", [HeapSimulator, Simulator],
                         ids=["heap", "wheel"])
def test_error_paths_are_identical(make):
    sim = make(seed=0)
    sim.call_in(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError, match=r"at t=0\.5 \(in the past\)"):
        sim.call_at(0.5, lambda: None)
    with pytest.raises(ValueError, match=r"a negative delay \(-0\.25\)"):
        sim.call_in(-0.25, lambda: None)
    with pytest.raises(ValueError, match=r"at t=0\.5 \(in the past\)"):
        sim.call_at_batch([2.0, 0.5], lambda: None)
    with pytest.raises(ValueError, match="in the past"):
        sim.run(until=0.5)


@pytest.mark.parametrize("make", [HeapSimulator, Simulator],
                         ids=["heap", "wheel"])
def test_batch_failure_keeps_sequence_consistent(make):
    """A batch that fails mid-way must still account the entries it
    scheduled, so later ties order identically on both kernels."""
    sim = make(seed=0)
    hits = []
    with pytest.raises(ValueError):
        sim.call_at_batch([1.0, 1.0, -1.0], lambda: hits.append("batch"))
    sim.call_at(1.0, hits.append, "after")
    sim.run()
    # the two valid batch entries fired first (earlier sequence)
    assert hits == ["batch", "batch", "after"]


def test_env_var_selects_heap_kernel(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, "heap")
    assert type(Simulator(seed=0)) is HeapSimulator
    monkeypatch.setenv(KERNEL_ENV, "wheel")
    assert type(Simulator(seed=0)) is Simulator
    monkeypatch.setenv(KERNEL_ENV, "calendar")
    with pytest.raises(ValueError, match="expected 'wheel' or 'heap'"):
        Simulator(seed=0)


# ----------------------------------------------------------------------
# the golden lock: the quick registry under the heap kernel
# ----------------------------------------------------------------------
GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_registry_quick.json"
)


def test_fig03_quick_record_matches_golden_under_heap(monkeypatch):
    """One full 3-tier consolidation run on the *heap* kernel matches
    the golden record (which the calendar kernel also reproduces, in
    ``test_policy_equivalence``) — both schedulers, one byte-identical
    history."""
    from repro.experiments.runner import JobConfig, execute_job, job_id

    monkeypatch.setenv(KERNEL_ENV, "heap")
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    job = JobConfig(name="fig03", seed=42, duration=18.0)
    assert execute_job(job) == golden[job_id(job)]


@pytest.mark.slow
def test_quick_registry_replays_golden_under_heap(monkeypatch):
    """The entire quick registry, replayed with ``REPRO_KERNEL=heap``
    through the parallel engine, reproduces the golden bytes."""
    from repro.experiments.record import records_to_json
    from repro.experiments.runner import expand_jobs, run_jobs

    monkeypatch.setenv(KERNEL_ENV, "heap")
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    names = sorted({record["experiment"] for record in golden.values()})
    jobs = expand_jobs(names=names, quick=True)
    report = run_jobs(jobs, workers=os.cpu_count() or 1,
                      timeout=600, retries=1)
    assert report.ok, report.failures
    with open(GOLDEN_PATH) as handle:
        assert records_to_json(report.records) == handle.read()
