"""Unit tests for the servlet DSL (repro.apps.servlet)."""

import pytest

from repro.apps.servlet import (
    Call,
    Compute,
    Request,
    Response,
    ServletContext,
    ServletError,
    callback_form,
)
from repro.sim import Simulator


def test_compute_rejects_negative_work():
    with pytest.raises(ValueError):
        Compute(-1.0)


def test_request_ids_are_unique_and_increasing():
    a = Request("K", "op", 0.0)
    b = Request("K", "op", 0.0)
    assert b.id > a.id


def test_child_request_shares_root():
    root = Request("ViewStory", "ViewStory", 1.0)
    child = root.child("q0", 2.0, work_hint=0.001)
    grandchild = child.child("q0.sub", 3.0)
    assert child.root is root
    assert grandchild.root is root
    assert child.kind == "ViewStory"
    assert child.work_hint == 0.001


def test_record_lands_on_root_trace():
    root = Request("K", "op", 0.0)
    child = root.child("q", 1.0)
    child.record(1.5, "drop", "mysql")
    assert root.trace == [(1.5, "drop", "mysql")]
    assert child.trace == []  # child delegates to root


def test_response_constructors():
    ok = Response.success({"rows": 3})
    err = Response.failure("boom")
    assert ok.ok and ok.value == {"rows": 3} and ok.error is None
    assert not err.ok and err.error == "boom"


def test_servlet_context_now_tracks_sim():
    sim = Simulator()
    ctx = ServletContext("srv", sim, sim.fork_rng("x"))
    sim.call_in(2.0, lambda: None)
    sim.run()
    assert ctx.now == 2.0


# ----------------------------------------------------------------------
# callback_form: the Fig 14 transformation
# ----------------------------------------------------------------------
class _RecordingEngine:
    """Synchronous engine: runs continuations immediately, logs steps."""

    def __init__(self, responses=None, failures=None):
        self.steps = []
        self.responses = dict(responses or {})
        self.failures = dict(failures or {})

    def compute(self, work, cont):
        self.steps.append(("compute", work))
        cont()

    def invoke(self, call, request, cont, on_error):
        self.steps.append(("call", call.target, call.operation))
        if call.operation in self.failures:
            on_error(self.failures[call.operation])
        else:
            cont(self.responses.get(call.operation))


def _two_query_servlet(ctx, request):
    yield Compute(0.001)
    first = yield Call("db", "q1")
    yield Compute(0.002)
    second = yield Call("db", "q2")
    return (first, second)


def test_callback_form_equivalent_to_generator():
    """The mechanical transformation preserves control flow and result."""
    sim = Simulator()
    ctx = ServletContext("app", sim, sim.fork_rng("x"))
    engine = _RecordingEngine(responses={"q1": "r1", "q2": "r2"})
    results = []
    start = callback_form(_two_query_servlet)
    start(ctx, Request("K", "op", 0.0), engine, results.append)
    assert results == [("r1", "r2")]
    assert engine.steps == [
        ("compute", 0.001),
        ("call", "db", "q1"),
        ("compute", 0.002),
        ("call", "db", "q2"),
    ]


def test_callback_form_propagates_errors_to_handler():
    sim = Simulator()
    ctx = ServletContext("app", sim, sim.fork_rng("x"))
    engine = _RecordingEngine(failures={"q1": ServletError("dropped")})
    errors = []
    start = callback_form(_two_query_servlet)
    start(ctx, Request("K", "op", 0.0), engine, lambda r: None,
          on_error=errors.append)
    assert len(errors) == 1
    assert "dropped" in str(errors[0])
    # processing stopped at the failing call
    assert engine.steps[-1] == ("call", "db", "q1")


def test_callback_form_servlet_can_catch_call_errors():
    def forgiving(ctx, request):
        yield Compute(0.001)
        try:
            value = yield Call("db", "q1")
        except ServletError:
            value = "fallback"
        return value

    sim = Simulator()
    ctx = ServletContext("app", sim, sim.fork_rng("x"))
    engine = _RecordingEngine(failures={"q1": ServletError("nope")})
    results = []
    callback_form(forgiving)(ctx, Request("K", "op", 0.0), engine,
                             results.append)
    assert results == ["fallback"]


def test_callback_form_loop_control_flow():
    """Schneider's rules cover loops: a for-loop of calls transforms."""

    def loopy(ctx, request):
        total = []
        for i in range(3):
            value = yield Call("db", f"q{i}")
            total.append(value)
        return total

    sim = Simulator()
    ctx = ServletContext("app", sim, sim.fork_rng("x"))
    engine = _RecordingEngine(responses={"q0": 0, "q1": 1, "q2": 2})
    results = []
    callback_form(loopy)(ctx, Request("K", "op", 0.0), engine, results.append)
    assert results == [[0, 1, 2]]
