"""Tests for the rolling windowed latency sketches."""

import random

import pytest

from repro.metrics.sketch import LatencySketch
from repro.metrics.window import LatencyWindows


def test_validation():
    with pytest.raises(ValueError):
        LatencyWindows(width=0.0)
    with pytest.raises(ValueError):
        LatencyWindows(depth=0)


def test_empty_snapshot_is_none():
    windows = LatencyWindows()
    assert windows.snapshot("web") is None
    assert windows.snapshots() == {}
    assert windows.history("web") == []
    assert windows.labels == []


def test_snapshot_matches_single_sketch():
    windows = LatencyWindows(width=0.25, depth=4)
    reference = LatencySketch()
    rng = random.Random(7)
    for _ in range(500):
        value = rng.expovariate(100.0)
        when = rng.uniform(0.0, 1.0)  # all inside the live ring
        windows.observe("web", when, value)
        reference.add(value)
    snap = windows.snapshot("web")
    assert snap["count"] == 500
    for key, q in (("p50", 50), ("p99", 99), ("p999", 99.9)):
        assert snap[key] == reference.quantile(q)
    assert snap["max"] == reference.max


def test_ring_rotation_condenses_history():
    windows = LatencyWindows(width=0.25, depth=2)
    for index in range(6):
        windows.observe("web", index * 0.25, 0.01 * (index + 1))
    # six windows seen, depth 2 live -> at least 4 condensed
    history = windows.history("web")
    assert len(history) == 6
    starts = [point.start for point in history]
    assert starts == sorted(starts)
    assert all(point.count == 1 for point in history)
    # the live ring holds at most depth windows
    assert len(windows._rings["web"].windows) <= 2


def test_snapshot_horizon_skips_stale_windows():
    windows = LatencyWindows(width=0.25, depth=2)
    windows.observe("web", 0.1, 0.01)
    # without a horizon the stale window still answers
    assert windows.snapshot("web")["count"] == 1
    # with now far past the window, the stream reads as quiet
    assert windows.snapshot("web", now=10.0) is None
    assert windows.snapshots(now=10.0) == {}


def test_history_includes_live_windows_without_losing_them():
    windows = LatencyWindows(width=0.25, depth=4)
    windows.observe("web", 0.1, 0.01)
    windows.observe("web", 0.3, 0.02)
    first = windows.history("web")
    assert len(first) == 2
    # live sketches stayed in the ring: history is repeatable
    assert windows.history("web") == first
    assert windows.snapshot("web")["count"] == 2


def test_labels_are_independent():
    windows = LatencyWindows()
    windows.observe("web", 0.1, 0.01)
    windows.observe("db", 0.1, 0.5)
    assert windows.labels == ["db", "web"]
    assert windows.snapshot("web")["count"] == 1
    assert windows.snapshot("db")["p50"] > windows.snapshot("web")["p50"]


def test_observation_counter():
    windows = LatencyWindows()
    for i in range(10):
        windows.observe("web", 0.01 * i, 0.001)
    assert windows.observations == 10


def test_out_of_order_observation_within_ring():
    # replies land slightly out of order; same-window folds must merge
    windows = LatencyWindows(width=0.25, depth=4)
    windows.observe("web", 0.30, 0.01)
    windows.observe("web", 0.26, 0.02)
    windows.observe("web", 0.10, 0.03)  # older window, still live
    assert windows.snapshot("web")["count"] == 3
    assert len(windows.history("web")) == 2
