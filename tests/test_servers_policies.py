"""Unit tests for the composable invocation-policy runtime.

Covers the policy specs and factories (repro.servers.policies), the
composed :class:`PolicyServer` (repro.servers.runtime), load-shedding
admission, the circuit breaker, caller-side timeout+retry on both
driver paths, and ConnectionTimeout -> ServletError propagation
through multi-tier chains under a retry remediation.
"""

import pytest

from repro.apps.servlet import Call, Compute, Request
from repro.cpu import Host
from repro.net import NetworkFabric
from repro.servers import (
    AdmissionSpec,
    CircuitBreaker,
    ConcurrencySpec,
    EagerAdmission,
    EventLoopConcurrency,
    KernelBacklogAdmission,
    NoRemediation,
    PolicyServer,
    RemediationSpec,
    SheddingAdmission,
    ThreadPoolConcurrency,
    TierPolicy,
    TimeoutRetry,
    build_admission,
    build_concurrency,
    build_remediation,
    policy_server,
)
from repro.sim import Simulator
from repro.topology import build_chain, uniform_chain
from repro.units import ms


@pytest.fixture
def sim():
    return Simulator(seed=17)


@pytest.fixture
def fabric(sim):
    return NetworkFabric(sim, latency=0.0, rto=3.0, max_retransmits=3)


def make_vm(sim, name="vm", cores=1):
    return Host(sim, cores=cores, name=f"{name}-host").add_vm(name)


def compute_handler(work):
    def handler(ctx, request):
        yield Compute(work)
        return {"served": request.operation}

    return handler


def calling_handler(target, work=0.001):
    def handler(ctx, request):
        yield Compute(work)
        reply = yield Call(target, request.operation)
        return {"via": reply}

    return handler


def send(sim, fabric, listener, operation="op", requests=None):
    outcomes = []

    def client():
        request = Request("K", operation, sim.now)
        if requests is not None:
            requests.append(request)
        exchange = fabric.send(listener, request)
        try:
            response = yield exchange.response
            outcomes.append(response)
        except Exception as exc:  # ConnectionTimeout
            outcomes.append(exc)

    sim.process(client())
    return outcomes


# ----------------------------------------------------------------------
# specs, factories, presets
# ----------------------------------------------------------------------
def test_admission_spec_validation():
    with pytest.raises(ValueError):
        AdmissionSpec("bogus")
    with pytest.raises(ValueError):
        AdmissionSpec("eager")  # needs a depth
    with pytest.raises(ValueError):
        AdmissionSpec("shed", depth=0)
    assert AdmissionSpec("shed", depth=4).depth == 4


def test_concurrency_and_remediation_spec_validation():
    with pytest.raises(ValueError):
        ConcurrencySpec("bogus")
    with pytest.raises(ValueError):
        RemediationSpec("bogus")


def test_build_factories_map_kinds_to_classes():
    assert isinstance(build_admission(AdmissionSpec()), KernelBacklogAdmission)
    assert isinstance(
        build_admission(AdmissionSpec("eager", depth=9)), EagerAdmission
    )
    shed = build_admission(AdmissionSpec("shed", depth=9))
    assert isinstance(shed, SheddingAdmission)
    assert shed.depth == 9
    assert isinstance(build_concurrency(ConcurrencySpec()),
                      ThreadPoolConcurrency)
    loop = build_concurrency(ConcurrencySpec("eventloop", workers=3))
    assert isinstance(loop, EventLoopConcurrency)
    assert loop.workers == 3
    assert isinstance(build_remediation(RemediationSpec()), NoRemediation)
    retry = build_remediation(
        RemediationSpec("retry", timeout=0.2, retries=4)
    )
    assert isinstance(retry, TimeoutRetry)
    assert retry.timeout == 0.2 and retry.retries == 4


def test_tier_policy_presets():
    sync = TierPolicy.sync(threads=7)
    assert (sync.admission.kind, sync.concurrency.kind,
            sync.remediation.kind) == ("backlog", "threads", "none")
    assert sync.concurrency.threads == 7
    asyn = TierPolicy.asynchronous(lite_q_depth=99, workers=2)
    assert (asyn.admission.kind, asyn.concurrency.kind) == (
        "eager", "eventloop")
    assert asyn.admission.depth == 99
    shed = TierPolicy.shedding(depth=11, threads=3)
    assert (shed.admission.kind, shed.concurrency.kind) == ("shed", "threads")
    assert shed.admission.depth == 11


def test_policy_server_default_composition_serves(sim, fabric):
    server = PolicyServer(sim, fabric, "srv", make_vm(sim),
                          compute_handler(0.01))
    outcomes = send(sim, fabric, server.listener, "hello")
    sim.run()
    assert outcomes[0].ok
    assert outcomes[0].value == {"served": "hello"}
    assert "backlog+threads+none" in repr(server)


def test_policy_server_factory_from_tier_policy(sim, fabric):
    server = policy_server(sim, fabric, "srv", make_vm(sim),
                           compute_handler(0.01),
                           TierPolicy.shedding(depth=5, threads=2),
                           backlog=4)
    assert isinstance(server.admission, SheddingAdmission)
    assert isinstance(server.concurrency, ThreadPoolConcurrency)
    assert server.max_sys_q_depth == 5 + 4


# ----------------------------------------------------------------------
# load-shedding admission (bounded LiteQ + 503)
# ----------------------------------------------------------------------
def shedding_server(sim, fabric, depth=2, threads=1, work=1.0):
    return policy_server(
        sim, fabric, "srv", make_vm(sim), compute_handler(work),
        TierPolicy.shedding(depth=depth, threads=threads), backlog=8,
    )


def test_shedding_admission_503s_over_depth(sim, fabric):
    server = shedding_server(sim, fabric, depth=2, threads=1, work=1.0)
    all_outcomes = [send(sim, fabric, server.listener, f"r{i}")
                    for i in range(5)]
    sim.run(until=0.5)
    # 2 admitted (1 running + 1 in the intake queue), 3 answered 503 --
    # immediately, long before the admitted work completes
    shed = [o[0] for o in all_outcomes if o and not o[0].ok]
    assert len(shed) == 3
    assert all("503" in response.error for response in shed)
    assert server.stats.shed == 3
    assert server.listener.sheds == 3
    assert server.listener.drops == 0
    sim.run()
    served = [o[0] for o in all_outcomes if o and o[0].ok]
    assert len(served) == 2
    assert server.stats.completed == 2


def test_shedding_admission_drains_after_completion(sim, fabric):
    """Room freed by a finished request re-opens the bounded queue."""
    server = shedding_server(sim, fabric, depth=2, threads=2, work=0.1)
    first = [send(sim, fabric, server.listener, f"a{i}") for i in range(2)]
    sim.run(until=0.5)
    late = send(sim, fabric, server.listener, "late")
    sim.run()
    assert all(o[0].ok for o in first)
    assert late[0].ok
    assert server.stats.shed == 0


def test_eager_thread_hybrid_counts_arrivals_at_admission(sim, fabric):
    """The LiteQ-fronted thread pool admits eagerly, then serves all."""
    server = shedding_server(sim, fabric, depth=50, threads=2, work=0.05)
    all_outcomes = [send(sim, fabric, server.listener, f"r{i}")
                    for i in range(8)]
    sim.run(until=0.01)
    assert server.stats.arrivals == 8       # admitted, not yet served
    assert server.listener.backlog_length == 0  # nothing parked in kernel
    sim.run()
    assert all(o[0].ok for o in all_outcomes)
    assert server.stats.completed == 8


# ----------------------------------------------------------------------
# CoDel (delay-based) admission
# ----------------------------------------------------------------------
def test_codel_spec_validation():
    with pytest.raises(ValueError, match="needs a depth"):
        AdmissionSpec("codel")
    with pytest.raises(ValueError, match="positive target and interval"):
        AdmissionSpec("codel", depth=4, target=0.0)
    with pytest.raises(ValueError, match="positive target and interval"):
        AdmissionSpec("codel", depth=4, interval=-1.0)
    spec = AdmissionSpec("codel", depth=4, target=0.02, interval=0.2)
    assert (spec.target, spec.interval) == (0.02, 0.2)


def test_codel_factory_and_preset():
    from repro.servers import CoDelAdmission

    built = build_admission(AdmissionSpec("codel", depth=9, target=0.02,
                                          interval=0.2))
    assert isinstance(built, CoDelAdmission)
    assert isinstance(built, SheddingAdmission)  # strictly tightens shed
    assert (built.depth, built.target, built.interval) == (9, 0.02, 0.2)
    policy = TierPolicy.codel(depth=9, threads=3, target=0.02, interval=0.2)
    assert policy.admission.kind == "codel"
    assert policy.concurrency.threads == 3


def test_codel_admission_constructor_validation(sim):
    from repro.servers import CoDelAdmission

    with pytest.raises(ValueError, match="target must be positive"):
        CoDelAdmission(4, target=0.0)
    with pytest.raises(ValueError, match="interval must be positive"):
        CoDelAdmission(4, interval=0.0)


def send_at(sim, fabric, listener, at, operation="op"):
    outcomes = []

    def client():
        if at:
            yield at
        exchange = fabric.send(listener, Request("K", operation, sim.now))
        try:
            outcomes.append((yield exchange.response))
        except Exception as exc:  # ConnectionTimeout
            outcomes.append(exc)

    sim.process(client())
    return outcomes


def codel_server(sim, fabric, work, depth=50, threads=1,
                 target=0.05, interval=0.1):
    return policy_server(
        sim, fabric, "srv", make_vm(sim), compute_handler(work),
        TierPolicy.codel(depth=depth, threads=threads, target=target,
                         interval=interval),
        backlog=64,
    )


def test_codel_sheds_on_standing_delay_long_before_depth(sim, fabric):
    """Five requests against depth=50: pure depth shedding never fires,
    but the standing queue's sojourn crosses target for a full interval
    and the control law sheds — the bufferbloat case CoDel exists for."""
    server = codel_server(sim, fabric, work=10.0)
    send_at(sim, fabric, server.listener, 0.0, "r0")     # runs forever
    send_at(sim, fabric, server.listener, 0.06, "r1")    # above target
    shed1 = send_at(sim, fabric, server.listener, 0.2, "r2")
    admitted = send_at(sim, fabric, server.listener, 0.25, "r3")
    shed2 = send_at(sim, fabric, server.listener, 0.35, "r4")
    sim.run(until=1.0)
    # r2: sojourn 0.2 s above target since 0.06 -> dropping state entered
    assert shed1 and not shed1[0].ok
    assert "codel shed" in shed1[0].error
    # r3 arrives inside the drop interval: admitted, not shed
    assert not admitted
    # r4 lands past drop_next: the ramping control law sheds again
    assert shed2 and not shed2[0].ok
    assert server.stats.shed == 2
    assert server.listener.sheds == 2
    assert server.listener.drops == 0            # fast 503s, no backlog


def test_codel_below_target_never_sheds(sim, fabric):
    server = codel_server(sim, fabric, work=0.01, threads=2)
    all_outcomes = [send_at(sim, fabric, server.listener, 0.05 * i, f"r{i}")
                    for i in range(10)]
    sim.run()
    assert all(o[0].ok for o in all_outcomes)
    assert server.stats.shed == 0


def test_codel_exits_dropping_once_the_queue_dissolves(sim, fabric):
    """One observation below target leaves the dropping state: after the
    burst drains, a late request is admitted and served normally."""
    server = codel_server(sim, fabric, work=0.04, target=0.05,
                          interval=0.1)
    # arrivals at twice the service rate: the standing queue's sojourn
    # climbs 20 ms per admitted pair until the control law trips
    burst = [send_at(sim, fabric, server.listener, 0.02 * i, f"b{i}")
             for i in range(16)]
    sim.run(until=3.0)
    assert server.stats.shed > 0                 # the burst tripped codel
    late = send_at(sim, fabric, server.listener, None, "late")
    sim.run()
    assert late[0].ok
    served = sum(1 for o in burst if o and o[0].ok)
    assert served + server.stats.shed == 16


def test_codel_hard_depth_bound_still_applies(sim, fabric):
    """depth stays the hard cap: a same-instant flood overruns the
    bound before any sojourn exists, and the parent's queue-full 503
    answers the overflow."""
    server = codel_server(sim, fabric, work=10.0, depth=2)
    all_outcomes = [send_at(sim, fabric, server.listener, 0.0, f"r{i}")
                    for i in range(5)]
    sim.run(until=0.5)
    shed = [o[0] for o in all_outcomes if o and not o[0].ok]
    assert len(shed) == 3
    assert all("queue full" in response.error for response in shed)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
def test_circuit_breaker_validation(sim):
    with pytest.raises(ValueError):
        CircuitBreaker(sim, threshold=0, reset_after=1.0)
    with pytest.raises(ValueError):
        CircuitBreaker(sim, threshold=1, reset_after=0.0)


def test_circuit_breaker_state_machine(sim):
    breaker = CircuitBreaker(sim, threshold=2, reset_after=1.0)
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "closed"  # one failure below threshold
    breaker.record_failure()
    assert breaker.state == "open" and breaker.opens == 1
    assert not breaker.allow()
    sim.run(until=1.5)  # past the reset window
    assert breaker.allow()            # the single half-open trial
    assert breaker.state == "half_open"
    assert not breaker.allow()        # second caller still blocked
    breaker.record_success()
    assert breaker.state == "closed" and breaker.allow()


def test_circuit_breaker_reopens_on_half_open_failure(sim):
    breaker = CircuitBreaker(sim, threshold=1, reset_after=1.0)
    breaker.record_failure()
    assert breaker.state == "open"
    sim.run(until=1.0)
    assert breaker.allow()
    breaker.record_failure()          # trial call failed
    assert breaker.state == "open" and breaker.opens == 2


# ----------------------------------------------------------------------
# timeout + retry remediation (both driver paths)
# ----------------------------------------------------------------------
def front_and_back(sim, fabric, remediation, front_async=False,
                   back_work=5.0):
    back = PolicyServer(sim, fabric, "back", make_vm(sim, "bvm"),
                        compute_handler(back_work),
                        concurrency=ThreadPoolConcurrency(threads=4))
    if front_async:
        policy = TierPolicy.asynchronous(workers=1, remediation=remediation)
    else:
        policy = TierPolicy.sync(threads=4, remediation=remediation)
    front = policy_server(sim, fabric, "front", make_vm(sim, "fvm"),
                          calling_handler("back"), policy)
    front.connect("back", back.listener)
    return front, back


@pytest.mark.parametrize("front_async", [False, True])
def test_timeout_retry_exhaustion_fails_the_request(sim, fabric,
                                                    front_async):
    spec = RemediationSpec("retry", timeout=0.2, retries=2, backoff=0.05,
                           breaker_threshold=None)
    front, back = front_and_back(sim, fabric, spec, front_async=front_async)
    outcomes = send(sim, fabric, front.listener, "slow")
    sim.run(until=3.0)
    assert outcomes and not outcomes[0].ok
    assert "no response within" in outcomes[0].error
    assert front.stats.retries == 2
    assert front.stats.downstream_failures == 3  # original + 2 retries
    assert front.stats.breaker_fast_fails == 0
    assert back.stats.arrivals == 3              # the retry storm, downstream


@pytest.mark.parametrize("front_async", [False, True])
def test_retry_succeeds_when_downstream_recovers(sim, fabric, front_async):
    spec = RemediationSpec("retry", timeout=0.3, retries=3, backoff=0.0,
                           breaker_threshold=None)
    # back is frozen for the first 0.4 s: the first attempt times out,
    # a retried attempt lands on the recovered server and succeeds
    front, back = front_and_back(sim, fabric, spec, front_async=front_async,
                                 back_work=0.01)
    sim.call_at(0.0, back.vm.freeze, 0.4)
    outcomes = send(sim, fabric, front.listener, "slow-start")
    sim.run(until=5.0)
    assert outcomes and outcomes[0].ok
    assert front.stats.retries >= 1
    assert front.stats.completed == 1


@pytest.mark.parametrize("front_async", [False, True])
def test_open_breaker_fails_fast_without_downstream_send(sim, fabric,
                                                         front_async):
    spec = RemediationSpec("retry", timeout=0.2, retries=0, backoff=0.0,
                           breaker_threshold=1, breaker_reset=30.0)
    front, back = front_and_back(sim, fabric, spec, front_async=front_async)
    first = send(sim, fabric, front.listener, "opens-the-breaker")
    sim.run(until=1.0)
    assert not first[0].ok
    sends_before = back.stats.arrivals
    second = send(sim, fabric, front.listener, "fast-failed")
    sim.run(until=2.0)
    assert not second[0].ok
    assert "circuit open" in second[0].error
    assert front.stats.breaker_fast_fails == 1
    assert back.stats.arrivals == sends_before  # nothing new sent


def test_retry_records_trace_events(sim, fabric):
    spec = RemediationSpec("retry", timeout=0.2, retries=1, backoff=0.0,
                           breaker_threshold=1, breaker_reset=30.0)
    front, _back = front_and_back(sim, fabric, spec)
    requests = []
    send(sim, fabric, front.listener, "r1", requests=requests)
    sim.run(until=1.0)
    send(sim, fabric, front.listener, "r2", requests=requests)
    sim.run(until=2.0)
    events = [event for _t, event, _d in requests[0].root.trace]
    assert "retry" in events
    later = [event for _t, event, _d in requests[1].root.trace]
    assert "breaker_open" in later


# ----------------------------------------------------------------------
# chains: ConnectionTimeout -> ServletError propagation under retry
# ----------------------------------------------------------------------
def retry_chain(depth=3, **retry_kwargs):
    spec_kwargs = dict(timeout=0.1, retries=1, backoff=0.0,
                       breaker_threshold=None)
    spec_kwargs.update(retry_kwargs)
    specs = uniform_chain(depth, threads=4, backlog=4,
                          pre_work=ms(0.05), post_work=ms(0.1),
                          stochastic=False)
    specs[-2].remediation = RemediationSpec("retry", **spec_kwargs)
    return build_chain(specs, seed=7)


def test_chain_timeout_propagates_as_servlet_error():
    """A frozen leaf turns remediation timeouts into explicit 500s at
    the client instead of silent multi-second retransmission stalls."""
    system = retry_chain(3)
    system.sim.call_at(1.0, system.vms[-1].freeze, 2.0)
    system.open_loop(rate=100.0)
    system.sim.run(until=4.0)
    summary = system.log.summary(4.0)
    assert summary["failed"] > 0
    mid = system.servers[-2]
    assert mid.stats.retries > 0
    assert mid.stats.downstream_failures > 0
    failures = [r for r in system.log.records if r.failed]
    assert any("no response within" in (r.error or "") for r in failures)
    # failures surface fast: well under the 3 s TCP retransmission tail
    assert all(r.response_time < 1.0 for r in failures)


def test_chain_breaker_open_fast_fails_midtier():
    system = retry_chain(4, breaker_threshold=2, breaker_reset=60.0)
    system.sim.call_at(1.0, system.vms[-1].freeze, 2.5)
    system.open_loop(rate=150.0)
    system.sim.run(until=4.0)
    mid = system.servers[-2]
    assert mid.stats.breaker_fast_fails > 0
    failures = [r for r in system.log.records if r.failed]
    assert any("circuit open" in (r.error or "") for r in failures)


def test_chain_recovers_after_breaker_reset():
    system = retry_chain(3, breaker_threshold=2, breaker_reset=0.5)
    system.sim.call_at(1.0, system.vms[-1].freeze, 1.0)
    system.open_loop(rate=100.0)
    system.sim.run(until=5.0)
    # the freeze window produced failures, but service resumed: late
    # requests complete again once the breaker's trial call succeeds
    late = [r for r in system.log.records if r.start > 3.0]
    assert late and any(not r.failed for r in late)


# ----------------------------------------------------------------------
# fixed routing (duplicate connect refusal)
# ----------------------------------------------------------------------
def test_connect_rejects_duplicate_target(sim, fabric):
    a = PolicyServer(sim, fabric, "a", make_vm(sim, "avm"),
                     compute_handler(0.01))
    b = PolicyServer(sim, fabric, "b", make_vm(sim, "bvm"),
                     compute_handler(0.01))
    a.connect("down", b.listener)
    with pytest.raises(ValueError, match="already connected"):
        a.connect("down", b.listener)
