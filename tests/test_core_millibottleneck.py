"""Unit tests for millibottleneck detection (repro.core.millibottleneck)."""

import pytest

from repro.core import Millibottleneck, find_all, find_millibottlenecks
from repro.cpu import Host
from repro.metrics import SystemMonitor, TimeSeries
from repro.sim import Simulator


def series_from(pairs):
    ts = TimeSeries("cpu")
    for t, v in pairs:
        ts.append(t, v)
    return ts


def test_detects_saturation_episode():
    ts = series_from([(0.0, 0.5), (0.05, 0.99), (0.10, 1.0), (0.15, 0.98),
                      (0.20, 0.4)])
    episodes = find_millibottlenecks(ts, "tomcat-vm")
    assert len(episodes) == 1
    episode = episodes[0]
    assert episode.resource == "tomcat-vm"
    assert episode.kind == "cpu"
    assert episode.start == pytest.approx(0.05)
    assert episode.end == pytest.approx(0.20)
    assert episode.duration == pytest.approx(0.15)


def test_short_blips_filtered():
    ts = series_from([(0.0, 0.5), (0.05, 1.0), (0.10, 0.5)])
    assert find_millibottlenecks(ts, "vm", min_duration=0.06) == []


def test_persistent_bottleneck_excluded_by_max_duration():
    pairs = [(0.05 * i, 1.0) for i in range(100)]  # 5 s of saturation
    ts = series_from([(0.0, 0.5)] + pairs[1:])
    assert find_millibottlenecks(ts, "vm", max_duration=2.5) == []


def test_multiple_episodes():
    ts = series_from([(0.0, 0.5), (1.0, 1.0), (1.2, 0.5),
                      (5.0, 1.0), (5.3, 0.5)])
    episodes = find_millibottlenecks(ts, "vm")
    assert [(e.start, e.end) for e in episodes] == [(1.0, 1.2), (5.0, 5.3)]


def test_threshold_validation():
    ts = series_from([(0.0, 0.5)])
    with pytest.raises(ValueError):
        find_millibottlenecks(ts, "vm", threshold=0)
    with pytest.raises(ValueError):
        find_millibottlenecks(ts, "vm", threshold=1.5)


def test_overlaps():
    episode = Millibottleneck("vm", "cpu", 1.0, 1.5)
    assert episode.overlaps(1.2, 2.0)
    assert episode.overlaps(0.0, 1.1)
    assert not episode.overlaps(1.5, 2.0)
    assert not episode.overlaps(0.0, 1.0)


def test_find_all_combines_cpu_and_io():
    sim = Simulator(seed=1)
    host = Host(sim, cores=1)
    vm = host.add_vm("mysql-vm")
    monitor = SystemMonitor(sim, interval=0.05).watch_vm("mysql-vm", vm)
    monitor.start()

    def load():
        # CPU saturation [1.0, 1.5]: continuous demand from two jobs
        yield 1.0
        vm.execute(0.25)
        vm.execute(0.25)
        # I/O freeze [3.0, 3.4] with a job pending so iowait accrues
        yield 2.0
        vm.execute(0.2)
        vm.freeze(0.4)

    sim.process(load())
    sim.run(until=5.0)
    episodes = find_all(monitor, threshold=0.9, min_duration=0.1)
    kinds = {(e.kind, e.resource) for e in episodes}
    assert ("cpu", "mysql-vm") in kinds
    assert ("io", "mysql-vm") in kinds
    assert episodes == sorted(episodes, key=lambda e: (e.start, e.resource))


def test_str_mentions_duration():
    episode = Millibottleneck("tomcat-vm", "cpu", 2.0, 2.35)
    text = str(episode)
    assert "tomcat-vm" in text and "350 ms" in text
