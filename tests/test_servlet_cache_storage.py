"""Unit tests for the cache/storage servlet instructions, both drivers.

CacheGet/CachePut/CacheAbort and StorageRead/StorageWrite are handled
by the thread-pool driver (``BaseServer._drive``) and the event-loop
driver (``EventLoopConcurrency._worker``) alike; these tests run the
same servlets through a :class:`SyncServer` and an :class:`AsyncServer`
to pin that equivalence, plus the not-attached error contract and the
single-flight coalescing path end to end.
"""

import pytest

from repro.apps.servlet import (
    CacheAbort,
    CacheGet,
    CachePut,
    Compute,
    Request,
    StorageRead,
    StorageWrite,
)
from repro.cpu import Host
from repro.net import NetworkFabric
from repro.servers import AsyncServer, SyncServer
from repro.servers.cache import LruCache
from repro.servers.storage import WriteBackStore
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=17)


@pytest.fixture
def fabric(sim):
    return NetworkFabric(sim, latency=0.0, rto=3.0, max_retransmits=3)


def make_vm(sim, name="vm"):
    return Host(sim, cores=1, name=f"{name}-host").add_vm(name)


def make_server(sim, fabric, handler, sync=True, **kwargs):
    if sync:
        kwargs.setdefault("threads", 4)
        return SyncServer(sim, fabric, "srv", make_vm(sim), handler, **kwargs)
    kwargs.setdefault("workers", 2)
    return AsyncServer(sim, fabric, "srv", make_vm(sim), handler, **kwargs)


def send(sim, fabric, listener, operation="op"):
    outcomes = []

    def client():
        exchange = fabric.send(listener, Request("K", operation, sim.now))
        try:
            outcomes.append((yield exchange.response))
        except Exception as exc:  # ConnectionTimeout
            outcomes.append(exc)

    sim.process(client())
    return outcomes


# ----------------------------------------------------------------------
# instruction validation and repr
# ----------------------------------------------------------------------
def test_cache_put_rejects_nonpositive_ttl():
    with pytest.raises(ValueError, match="ttl must be positive"):
        CachePut("k", 1, ttl=0.0)


def test_storage_commands_reject_nonpositive_sizes():
    with pytest.raises(ValueError, match="size must be positive"):
        StorageRead(0)
    with pytest.raises(ValueError, match="size must be positive"):
        StorageWrite(-2.0)


def test_instruction_reprs():
    assert repr(CacheGet("k")) == "CacheGet('k')"
    assert "single-flight" in repr(CacheGet("k", coalesce=True))
    assert repr(CachePut("k", 1)) == "CachePut('k')"
    assert repr(CacheAbort("k")) == "CacheAbort('k')"
    assert repr(StorageRead(2.0)) == "StorageRead(2)"
    assert repr(StorageWrite()) == "StorageWrite(1)"


# ----------------------------------------------------------------------
# cache-aside through both drivers
# ----------------------------------------------------------------------
def cache_aside_handler(ctx, request):
    hit, value = yield CacheGet("key")
    if hit:
        return {"from": "cache", "value": value}
    yield Compute(0.01)                     # the backing fetch
    yield CachePut("key", "fetched")
    return {"from": "backing", "value": "fetched"}


@pytest.mark.parametrize("sync", [True, False])
def test_cache_aside_miss_then_hit(sim, fabric, sync):
    server = make_server(sim, fabric, cache_aside_handler, sync=sync)
    server.cache = LruCache(sim, 8, name="srv-cache")
    first = send(sim, fabric, server.listener, "r1")
    sim.run(until=0.05)
    second = send(sim, fabric, server.listener, "r2")
    sim.run()
    assert first[0].value == {"from": "backing", "value": "fetched"}
    assert second[0].value == {"from": "cache", "value": "fetched"}
    assert server.cache.stats.hits == 1
    assert server.cache.stats.misses == 1
    # the route label defaults to the request's operation name
    assert server.cache.stats.route_misses == {"r1": 1}
    assert server.cache.stats.route_hits == {"r2": 1}


@pytest.mark.parametrize("sync", [True, False])
def test_cache_get_without_attached_cache_fails_the_request(sim, fabric,
                                                            sync):
    server = make_server(sim, fabric, cache_aside_handler, sync=sync)
    outcomes = send(sim, fabric, server.listener)
    sim.run()
    assert not outcomes[0].ok
    assert "no cache attached" in outcomes[0].error
    assert server.stats.failed == 1


def coalescing_handler(ctx, request):
    hit, value = yield CacheGet("key", coalesce=True)
    if hit:
        return {"leader": False, "value": value}
    yield Compute(0.05)                     # slow fetch: followers park
    yield CachePut("key", "published")
    return {"leader": True, "value": "published"}


@pytest.mark.parametrize("sync", [True, False])
def test_single_flight_collapses_the_herd(sim, fabric, sync):
    server = make_server(sim, fabric, coalescing_handler, sync=sync)
    server.cache = LruCache(sim, 8, name="srv-cache")
    herd = [send(sim, fabric, server.listener, f"r{i}") for i in range(4)]
    sim.run()
    payloads = [o[0].value for o in herd]
    assert sum(1 for p in payloads if p["leader"]) == 1
    assert all(p["value"] == "published" for p in payloads)
    assert server.cache.stats.coalesced == 3
    assert server.cache.inflight_keys() == 0


def aborting_handler(ctx, request):
    hit, value = yield CacheGet("key", coalesce=True)
    if hit:
        return {"value": value}
    yield Compute(0.05)
    yield CacheAbort("key")                 # the backing fetch "failed"
    return {"value": None}


@pytest.mark.parametrize("sync", [True, False])
def test_abort_resumes_followers_with_a_miss(sim, fabric, sync):
    server = make_server(sim, fabric, aborting_handler, sync=sync)
    server.cache = LruCache(sim, 8, name="srv-cache")
    herd = [send(sim, fabric, server.listener, f"r{i}") for i in range(3)]
    sim.run()
    assert all(o[0].ok and o[0].value == {"value": None} for o in herd)
    # the two followers resumed with (False, None); nobody is wedged
    assert server.cache.stats.coalesced == 2
    assert server.cache.inflight_keys() == 0
    assert "key" not in server.cache


# ----------------------------------------------------------------------
# storage commands through both drivers
# ----------------------------------------------------------------------
def storage_handler(ctx, request):
    if request.operation == "write":
        yield StorageWrite(1.0)
        return {"did": "write"}
    yield StorageRead(1.0)
    return {"did": "read"}


@pytest.mark.parametrize("sync", [True, False])
def test_write_acks_fast_read_waits_behind_the_buffer(sim, fabric, sync):
    server = make_server(sim, fabric, storage_handler, sync=sync)
    server.storage = WriteBackStore(sim, service_time=0.05,
                                    name="srv-store")
    writes = [send(sim, fabric, server.listener, "write")
              for _ in range(4)]
    read = send(sim, fabric, server.listener, "read")
    sim.run(until=0.01)
    # every write acked at admission, long before the device served any
    assert all(o and o[0].ok for o in writes)
    assert not read                         # queued behind 4 x 50 ms
    sim.run(until=0.3)
    assert read[0].ok and read[0].value == {"did": "read"}
    assert server.storage.stats.served_writes == 4
    assert server.storage.stats.served_reads == 1


@pytest.mark.parametrize("sync", [True, False])
def test_storage_without_attached_store_fails_the_request(sim, fabric,
                                                          sync):
    server = make_server(sim, fabric, storage_handler, sync=sync)
    outcomes = send(sim, fabric, server.listener, "read")
    sim.run()
    assert not outcomes[0].ok
    assert "no storage attached" in outcomes[0].error


@pytest.mark.parametrize("sync", [True, False])
def test_bounded_buffer_backpressures_the_servlet(sim, fabric, sync):
    server = make_server(sim, fabric, storage_handler, sync=sync)
    server.storage = WriteBackStore(sim, service_time=0.05,
                                    buffer_capacity=1, name="srv-store")
    writes = [send(sim, fabric, server.listener, "write")
              for _ in range(3)]
    sim.run(until=0.01)
    # one admitted instantly; the rest stall on the full buffer
    finished = sum(1 for o in writes if o)
    assert finished == 1
    assert server.storage.stats.write_stalls == 2
    sim.run()
    assert all(o[0].ok for o in writes)
    assert server.storage.write_buffer_depth() == 0
