"""Tests for the full Fig 2 consolidation pair
(repro.topology.consolidation) and the MMPP workload it relies on."""

import pytest

from repro.sim import Simulator
from repro.topology import (
    SystemConfig,
    build_consolidated_pair,
    build_system,
    sysbursty_mix,
)
from repro.workload import MmppOpenLoop

from conftest import tiny_mix


# ----------------------------------------------------------------------
# builder plumbing
# ----------------------------------------------------------------------
def test_host_override_colocates_vms():
    sim = Simulator(seed=1)
    steady = build_system(SystemConfig(seed=1), sim=sim)
    other = build_system(
        SystemConfig(seed=1), sim=sim,
        host_overrides={"db": steady.hosts["app"]},
        name_prefix="sysbursty-",
    )
    assert other.hosts["db"] is steady.hosts["app"]
    assert other.vms["db"].host is steady.hosts["app"]
    # two VMs now live on the shared host
    assert len(steady.hosts["app"].vms) == 2


def test_name_prefix_disambiguates():
    sim = Simulator(seed=1)
    build_system(SystemConfig(seed=1), sim=sim)
    other = build_system(SystemConfig(seed=1), sim=sim,
                         name_prefix="sysbursty-")
    assert other.names == {
        "web": "sysbursty-apache",
        "app": "sysbursty-tomcat",
        "db": "sysbursty-mysql",
    }
    assert other.vms["db"].name == "sysbursty-mysql-vm"


def test_pair_default_shape():
    pair = build_consolidated_pair(SystemConfig(seed=3))
    assert pair.shared_host is pair.steady.hosts["app"]
    assert pair.bursty.vms["db"].host is pair.shared_host
    assert pair.bursty.vms["db"].shares == 30.0
    # SysBursty's other tiers live on their own hosts
    assert pair.bursty.hosts["web"] is not pair.shared_host
    assert pair.bursty.hosts["app"] is not pair.shared_host


def test_pair_shared_tier_db():
    pair = build_consolidated_pair(SystemConfig(seed=3), shared_tier="db")
    assert pair.bursty.vms["db"].host is pair.steady.hosts["db"]


def test_pair_rejects_unknown_tier():
    with pytest.raises(ValueError):
        build_consolidated_pair(shared_tier="cache")


def test_sysbursty_mix_is_db_heavy():
    (spec,) = sysbursty_mix(stochastic=False)
    assert spec.total_db_work() > spec.total_app_work()


# ----------------------------------------------------------------------
# MMPP generator
# ----------------------------------------------------------------------
def _count_arrivals(normal_rate, burst_rate, burst_duration,
                    normal_duration, horizon, seed=5):
    from repro.apps.rubbos import RubbosApplication
    from repro.apps.servlet import Response
    from repro.metrics import RequestLog
    from repro.net import NetworkFabric

    sim = Simulator(seed=seed)
    fabric = NetworkFabric(sim, latency=0.0)
    listener = fabric.listener("web", backlog=100000)

    def server():
        while True:
            exchange = yield listener.accept()
            exchange.reply(Response.success(None))

    sim.process(server())
    log = RequestLog()
    generator = MmppOpenLoop(
        sim, fabric, listener, RubbosApplication(tiny_mix(stochastic=True)),
        log, normal_rate=normal_rate, burst_rate=burst_rate,
        burst_duration=burst_duration, normal_duration=normal_duration,
    ).start()
    sim.run(until=horizon)
    return log, generator


def test_mmpp_rates_by_state():
    log, generator = _count_arrivals(
        normal_rate=50.0, burst_rate=2000.0,
        burst_duration=0.5, normal_duration=5.0, horizon=120.0,
    )
    # split arrivals into burst / normal periods using the transitions
    spans = []
    current = (0.0, "normal")
    for t, state in generator.transitions:
        spans.append((current[0], t, current[1]))
        current = (t, state)
    spans.append((current[0], 120.0, current[1]))
    burst_time = sum(e - s for s, e, st in spans if st == "burst")
    normal_time = sum(e - s for s, e, st in spans if st == "normal")
    burst_count = sum(
        1 for r in log.records
        if any(s <= r.start < e for s, e, st in spans if st == "burst")
    )
    normal_count = len(log.records) - burst_count
    assert burst_count / burst_time == pytest.approx(2000.0, rel=0.15)
    assert normal_count / normal_time == pytest.approx(50.0, rel=0.15)


def test_mmpp_validation():
    sim = Simulator(seed=1)
    with pytest.raises(ValueError):
        MmppOpenLoop(sim, None, None, None, None, normal_rate=10,
                     burst_rate=5)
    with pytest.raises(ValueError):
        MmppOpenLoop(sim, None, None, None, None, normal_rate=-1,
                     burst_rate=5)
    with pytest.raises(ValueError):
        MmppOpenLoop(sim, None, None, None, None, normal_rate=1,
                     burst_rate=5, burst_duration=0)


def test_mmpp_zero_normal_rate_is_idle_between_bursts():
    log, generator = _count_arrivals(
        normal_rate=0.0001, burst_rate=500.0,
        burst_duration=0.5, normal_duration=3.0, horizon=60.0,
    )
    assert len(log.records) > 100  # bursts happened
    burst_spans = []
    start = None
    for t, state in generator.transitions:
        if state == "burst":
            start = t
        elif start is not None:
            burst_spans.append((start, t + 0.001))
            start = None
    outside = [
        r for r in log.records
        if not any(s <= r.start < e for s, e in burst_spans)
    ]
    assert len(outside) <= 2  # essentially everything inside bursts


# ----------------------------------------------------------------------
# the emergent Fig 2/3 phenomenology (integration)
# ----------------------------------------------------------------------
@pytest.mark.integration
@pytest.mark.slow
def test_pair_reproduces_emergent_upstream_ctqo():
    pair = build_consolidated_pair(SystemConfig(nx=0, seed=42))
    monitor = pair.attach_monitor()
    pair.start_workloads()
    pair.sim.run(until=45.0)
    drops = pair.steady.drop_counts()
    assert drops["apache"] > 20, f"no emergent CTQO: {drops}"
    assert monitor.queues["tomcat"].max() == 293
    # SysBursty's MySQL idles between episodes
    assert monitor.host_cpu["sysbursty-mysql"].mean() < 0.3
    # and the episodes themselves appear as detected millibottlenecks
    from repro.core.millibottleneck import find_all

    episodes = [
        e for e in find_all(monitor, min_duration=0.2)
        if e.resource == "sysbursty-mysql"
    ]
    assert episodes, "no millibottlenecks detected at SysBursty-MySQL"
