"""Tests for the fan-out/fan-in experiment (repro.experiments.fanout)."""

import pytest

from repro.experiments import fanout

#: one small-but-real scale shared by the slow tests: wide enough for a
#: visible max-of-N tail, long enough to reach the 4 s leaf stall
SCALE = dict(duration=8.0, warmup=1.0, clients=2000)


def test_unknown_variant_rejected():
    with pytest.raises(ValueError, match="unknown variant 'allof'"):
        fanout.run_one("allof", **SCALE)
    with pytest.raises(ValueError, match="unknown variant 'allof'"):
        fanout.run(variants=["sync", "allof"], **SCALE)


def test_degenerate_fanouts_rejected():
    with pytest.raises(ValueError, match="fanouts"):
        fanout.run(fanouts=[], **SCALE)
    with pytest.raises(ValueError, match="fanouts"):
        fanout.run(fanouts=[1, 4], **SCALE)


def test_outcomes_without_cells_are_unscored():
    outcomes = fanout.fanout_outcomes({"scaling": {}, "stall": {}})
    assert outcomes
    assert all(o["holds"] is None for o in outcomes.values())
    assert fanout.check_claims({"scaling": {}, "stall": {}}) == []


@pytest.mark.slow
def test_small_scale_run_holds_every_claim():
    cells = fanout.run(fanouts=[4, 8], **SCALE)
    assert fanout.check_claims(cells) == []
    outcomes = fanout.fanout_outcomes(cells)
    assert all(o["holds"] for o in outcomes.values())

    # tail at scale: the parent p99 sits near the pooled leaf quantile
    for n, cell in cells["scaling"].items():
        assert cell["quantile"] == pytest.approx(100.0 * (1 - 0.01 / n))
        assert cell["summary"]["vlrt"] == 0
    # the same stall, four fan-in regimes, four different outcomes
    sync, asyn = cells["stall"]["sync"], cells["stall"]["async"]
    quorum, hedged = cells["stall"]["quorum"], cells["stall"]["hedged"]
    assert sync["summary"]["drops_by_server"]["root"] > 0
    assert asyn["summary"]["drops_by_server"]["root"] == 0
    assert asyn["summary"]["drops_by_server"]["leaf1"] > 0
    assert quorum["summary"]["vlrt"] == 0
    assert quorum["gathers"]["legs_wasted"] > 0
    assert hedged["summary"]["vlrt"] == 0
    assert hedged["hedges"]["hedge_wins"] > 0
    # every stall cell clears the attribution acceptance bar
    for cell in cells["stall"].values():
        assert cell["attribution"]["coverage"] >= 0.90

    # report renders every section without touching the RunResults
    text = fanout.report(cells)
    assert "tail at scale" in text
    assert "frozen 400 ms" in text
    assert "[ok]" in text and "FAIL" not in text


@pytest.mark.slow
def test_run_experiment_payload_is_plain_data():
    from repro.experiments.runner import JobConfig

    record = fanout.run_experiment(JobConfig(
        name="fanout", seed=42, duration=8.0,
        params={"clients": 2000, "fanouts": [4], "variants": ["sync"]},
    ))
    assert set(record) == {"scaling", "stall", "outcomes"}
    for cell in (*record["scaling"].values(), *record["stall"].values()):
        assert "result" not in cell and "variant" not in cell
    # unscored claims (async/quorum/hedged cells not requested) are
    # reported as None, not failed
    assert record["outcomes"]["quorum_sheds_stalled_leg"]["holds"] is None
    assert fanout.check_claims(record) == []
