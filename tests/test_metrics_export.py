"""Unit tests for exporters (repro.metrics.export)."""

import csv
import json

import pytest

from repro.metrics import (
    RequestLog,
    RequestRecord,
    TimeSeries,
    chrome_trace_to_json,
    events_to_jsonl,
    request_log_to_csv,
    run_summary_to_json,
    timeseries_to_csv,
)


def make_series(name, pairs):
    ts = TimeSeries(name)
    for t, v in pairs:
        ts.append(t, v)
    return ts


# ----------------------------------------------------------------------
# time series CSV
# ----------------------------------------------------------------------
def test_timeseries_csv_roundtrip(tmp_path):
    path = tmp_path / "series.csv"
    a = make_series("cpu", [(0.05, 0.5), (0.10, 0.7)])
    b = make_series("queue", [(0.05, 12), (0.10, 278)])
    timeseries_to_csv(path, {"cpu": a, "queue": b})
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["time_s", "cpu", "queue"]
    assert rows[1] == ["0.050000", "0.5", "12"]
    assert rows[2] == ["0.100000", "0.7", "278"]


def test_timeseries_csv_rejects_misaligned(tmp_path):
    a = make_series("a", [(0.05, 1)])
    b = make_series("b", [(0.06, 2)])
    with pytest.raises(ValueError):
        timeseries_to_csv(tmp_path / "x.csv", {"a": a, "b": b})


def test_timeseries_csv_rejects_empty(tmp_path):
    with pytest.raises(ValueError):
        timeseries_to_csv(tmp_path / "x.csv", {})


# ----------------------------------------------------------------------
# request log CSV
# ----------------------------------------------------------------------
def test_request_log_csv(tmp_path):
    log = RequestLog()
    log.add(RequestRecord(1, "ViewStory", 1.0, 1.005))
    log.add(RequestRecord(2, "ViewStory", 2.0, 5.2,
                          attempts=2, drops=[(2.0, "apache")],
                          failed=False))
    path = tmp_path / "requests.csv"
    request_log_to_csv(path, log)
    with open(path) as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    assert rows[0]["kind"] == "ViewStory"
    assert float(rows[0]["response_time_s"]) == pytest.approx(0.005)
    assert rows[1]["drop_sites"] == "apache"
    assert rows[1]["attempts"] == "2"


# ----------------------------------------------------------------------
# run summary JSON
# ----------------------------------------------------------------------
def test_run_summary_json(tmp_path):
    import sys
    sys.path.insert(0, "tests")
    from test_core_evaluation import tiny_scenario

    result = (
        tiny_scenario()
        .with_log_flush("db", period=4.0, duration=0.5, offset=3.0)
        .run()
    )
    path = tmp_path / "summary.json"
    run_summary_to_json(path, result)
    payload = json.loads(path.read_text())
    assert payload["config"]["nx"] == 0
    assert payload["config"]["stack"]["db"] == "mysql"
    assert payload["summary"]["requests"] > 0
    assert any(
        episode["kind"] == "io" for episode in payload["millibottlenecks"]
    )
    # JSON must be fully serializable (no numpy scalars sneaking in)
    json.dumps(payload)


# ----------------------------------------------------------------------
# Chrome trace JSON + JSONL event log
# ----------------------------------------------------------------------
class FakeRecorder:
    def __init__(self, events):
        self.events = list(events)
        self.recorded = len(self.events)


def traced_log():
    log = RequestLog()
    log.add(RequestRecord(
        7, "ViewStory", 10.0, 13.01,
        drops=[(10.0, "apache")],
        trace=[
            (10.0, "drop", "apache"),
            (13.0, "start", "apache"),
            (13.005, "start", "tomcat"),
            (13.008, "reply", "tomcat"),
            (13.01, "reply", "apache"),
        ],
    ))
    log.add(RequestRecord(8, "StaticContent", 10.5, 10.505))  # no trace
    return log


def test_chrome_trace_counters_spans_and_instants(tmp_path):
    class FakeMonitor:
        cpu = {"tomcat": make_series("cpu:tomcat", [(0.05, 0.5)])}
        host_cpu = {}
        iowait = {}
        queues = {}
        occupancy = {}
        backlog = {"apache": make_series("backlog:apache", [(0.05, 120)])}
        headroom = {}

    recorder = FakeRecorder([
        (10.0, "net.drop", "apache", 1),
        (10.1, "cpu.alloc", "tomcat-vm", 0.5),
        (10.2, "queue.grant", "tomcat.pool", 3),   # not a trace instant
    ])
    path = tmp_path / "trace.json"
    chrome_trace_to_json(path, monitor=FakeMonitor(), log=traced_log(),
                         recorder=recorder)
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]

    process_names = {e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
    assert process_names == {"gauges", "requests", "events"}

    counters = [e for e in events if e["ph"] == "C"]
    assert {"cpu:tomcat", "backlog:apache", "alloc:tomcat-vm"} == {
        e["name"] for e in counters
    }
    gauge = next(e for e in counters if e["name"] == "cpu:tomcat")
    assert gauge["ts"] == pytest.approx(50_000)   # 0.05 s in µs

    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {"apache", "tomcat"}
    apache = next(e for e in spans if e["name"] == "apache")
    assert apache["dur"] == pytest.approx(10_000)  # 13.0 -> 13.01 s

    instants = [e for e in events if e["ph"] == "i"]
    names = {e["name"] for e in instants}
    assert "drop@apache" in names
    assert "net.drop@apache" in names
    assert not any("queue.grant" in n for n in names)


def test_chrome_trace_caps_request_tracks(tmp_path):
    log = RequestLog()
    for i in range(5):
        log.add(RequestRecord(
            i, "X", float(i), float(i) + 3.0,
            trace=[(float(i), "start", "apache"),
                   (float(i) + 3.0, "reply", "apache")],
        ))
    path = tmp_path / "trace.json"
    chrome_trace_to_json(path, log=log, max_request_traces=2)
    payload = json.loads(path.read_text())
    tids = {e["tid"] for e in payload["traceEvents"] if e["ph"] == "X"}
    assert tids == {0, 1}   # earliest-starting requests kept


def test_events_jsonl_round_trip(tmp_path):
    recorder = FakeRecorder([
        (1.5, "queue.enqueue", "tomcat.pool", 12),
        (2.0, "net.drop", "apache", 1),
    ])
    path = tmp_path / "events.jsonl"
    events_to_jsonl(path, recorder)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines == [
        {"t": 1.5, "kind": "queue.enqueue", "source": "tomcat.pool",
         "value": 12},
        {"t": 2.0, "kind": "net.drop", "source": "apache", "value": 1},
    ]
