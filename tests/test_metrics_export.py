"""Unit tests for exporters (repro.metrics.export)."""

import csv
import json

import pytest

from repro.metrics import (
    RequestLog,
    RequestRecord,
    TimeSeries,
    request_log_to_csv,
    run_summary_to_json,
    timeseries_to_csv,
)


def make_series(name, pairs):
    ts = TimeSeries(name)
    for t, v in pairs:
        ts.append(t, v)
    return ts


# ----------------------------------------------------------------------
# time series CSV
# ----------------------------------------------------------------------
def test_timeseries_csv_roundtrip(tmp_path):
    path = tmp_path / "series.csv"
    a = make_series("cpu", [(0.05, 0.5), (0.10, 0.7)])
    b = make_series("queue", [(0.05, 12), (0.10, 278)])
    timeseries_to_csv(path, {"cpu": a, "queue": b})
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["time_s", "cpu", "queue"]
    assert rows[1] == ["0.050000", "0.5", "12"]
    assert rows[2] == ["0.100000", "0.7", "278"]


def test_timeseries_csv_rejects_misaligned(tmp_path):
    a = make_series("a", [(0.05, 1)])
    b = make_series("b", [(0.06, 2)])
    with pytest.raises(ValueError):
        timeseries_to_csv(tmp_path / "x.csv", {"a": a, "b": b})


def test_timeseries_csv_rejects_empty(tmp_path):
    with pytest.raises(ValueError):
        timeseries_to_csv(tmp_path / "x.csv", {})


# ----------------------------------------------------------------------
# request log CSV
# ----------------------------------------------------------------------
def test_request_log_csv(tmp_path):
    log = RequestLog()
    log.add(RequestRecord(1, "ViewStory", 1.0, 1.005))
    log.add(RequestRecord(2, "ViewStory", 2.0, 5.2,
                          attempts=2, drops=[(2.0, "apache")],
                          failed=False))
    path = tmp_path / "requests.csv"
    request_log_to_csv(path, log)
    with open(path) as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    assert rows[0]["kind"] == "ViewStory"
    assert float(rows[0]["response_time_s"]) == pytest.approx(0.005)
    assert rows[1]["drop_sites"] == "apache"
    assert rows[1]["attempts"] == "2"


# ----------------------------------------------------------------------
# run summary JSON
# ----------------------------------------------------------------------
def test_run_summary_json(tmp_path):
    import sys
    sys.path.insert(0, "tests")
    from test_core_evaluation import tiny_scenario

    result = (
        tiny_scenario()
        .with_log_flush("db", period=4.0, duration=0.5, offset=3.0)
        .run()
    )
    path = tmp_path / "summary.json"
    run_summary_to_json(path, result)
    payload = json.loads(path.read_text())
    assert payload["config"]["nx"] == 0
    assert payload["config"]["stack"]["db"] == "mysql"
    assert payload["summary"]["requests"] > 0
    assert any(
        episode["kind"] == "io" for episode in payload["millibottlenecks"]
    )
    # JSON must be fully serializable (no numpy scalars sneaking in)
    json.dumps(payload)
