"""Unit tests for report rendering (repro.experiments.report)."""

from repro.experiments.report import (
    ascii_timeline,
    format_table,
    histogram_rows,
    indent,
)
from repro.metrics import TimeSeries


def series(pairs, name="s"):
    ts = TimeSeries(name)
    for t, v in pairs:
        ts.append(t, v)
    return ts


# ----------------------------------------------------------------------
# ascii_timeline
# ----------------------------------------------------------------------
def test_timeline_empty_series():
    assert "(no samples)" in ascii_timeline(TimeSeries("empty"))


def test_timeline_has_label_and_max():
    text = ascii_timeline(series([(0, 0.0), (1, 0.5), (2, 1.0)]),
                          label="cpu", width=10)
    assert "cpu" in text
    assert "max=1" in text
    assert "|" in text


def test_timeline_width_respected():
    text = ascii_timeline(series([(i, i) for i in range(100)]), width=20)
    body = text.split("|")[1]
    assert len(body) == 20


def test_timeline_peaks_survive_downsampling():
    """Max-per-cell: a single spike must not be averaged away."""
    pairs = [(i * 0.1, 0.0) for i in range(100)]
    pairs[50] = (5.0, 1.0)
    text = ascii_timeline(series(pairs), width=10, vmax=1.0)
    body = text.split("|")[1]
    assert "█" in body


def test_timeline_vmax_scales_bars():
    half = ascii_timeline(series([(0, 0.5), (1, 0.5)]), width=4, vmax=1.0)
    full = ascii_timeline(series([(0, 0.5), (1, 0.5)]), width=4)
    assert half.split("|")[1] != full.split("|")[1]


# ----------------------------------------------------------------------
# format_table
# ----------------------------------------------------------------------
def test_table_alignment_and_header():
    text = format_table(["name", "count"], [["apache", 12], ["mysql", 3]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert lines[2].startswith("apache")
    assert all(len(line) <= len(lines[1]) + 2 for line in lines)


def test_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text and "b" in text


def test_table_floats_formatted():
    text = format_table(["x"], [[3.14159]])
    assert "3.14" in text and "3.14159" not in text


# ----------------------------------------------------------------------
# histogram_rows
# ----------------------------------------------------------------------
def test_histogram_rows_skips_empty_bins():
    text = histogram_rows([(0.0, 100), (0.1, 0), (3.0, 5)])
    assert "0.10s" not in text
    assert "3.00s" in text


def test_histogram_rows_log_scaled_bars():
    text = histogram_rows([(0.0, 100000), (3.0, 10)])
    big, small = text.splitlines()
    assert big.count("#") > small.count("#")
    assert small.count("#") >= 1


def test_histogram_rows_empty():
    assert histogram_rows([(0.0, 0)]) == "(empty histogram)"


def test_indent():
    assert indent("a\nb", "  ") == "  a\n  b"
