"""Unit tests for the timeline experiment machinery
(repro.experiments.timeline) — spec handling and claim checking."""

import pytest

from repro.experiments import fig03_vm_consolidation, fig10_nx3_xtomcat
from repro.experiments.timeline import TimelineResult, TimelineSpec


def spec(**overrides):
    defaults = dict(
        figure="Fig X", title="test", nx=0,
        bottleneck_kind="consolidation", bottleneck_tier="app",
        burst_times=(15.0, 22.0, 29.0, 36.0),
    )
    defaults.update(overrides)
    return TimelineSpec(**defaults)


class FakeRun:
    def __init__(self, drops):
        self._drops = drops

    @property
    def drops(self):
        return self._drops


def result_with_drops(the_spec, drops):
    return TimelineResult(the_spec, FakeRun(drops))


# ----------------------------------------------------------------------
# spec scaling
# ----------------------------------------------------------------------
def test_scaled_trims_burst_times_past_duration():
    scaled = spec().scaled(duration=25.0)
    assert scaled.duration == 25.0
    assert scaled.burst_times == (15.0, 22.0)
    # original untouched
    assert spec().burst_times == (15.0, 22.0, 29.0, 36.0)


def test_scaled_overrides_clients_and_seed():
    scaled = spec().scaled(clients=100, seed=9)
    assert scaled.clients == 100
    assert scaled.seed == 9
    assert scaled.duration == spec().duration


def test_build_config_carries_nx_and_vcpus():
    config = spec(nx=2, app_vcpus=4).build_config()
    assert config.nx == 2
    assert config.app_vcpus == 4


def test_build_config_overrides():
    config = spec(config_overrides={"tcp_rto": 1.5}).build_config()
    assert config.tcp_rto == 1.5


# ----------------------------------------------------------------------
# claim checking
# ----------------------------------------------------------------------
def test_claims_pass_when_drops_at_expected_site():
    the_spec = spec(expect_drops_at=("apache",))
    result = result_with_drops(the_spec, {"apache": 100, "tomcat": 5,
                                          "mysql": 0})
    assert result.check_claims() == []


def test_claims_fail_when_expected_site_clean():
    the_spec = spec(expect_drops_at=("apache",))
    result = result_with_drops(the_spec, {"apache": 0, "tomcat": 50,
                                          "mysql": 0})
    failures = result.check_claims()
    assert any("expected drops at apache" in f for f in failures)


def test_claims_fail_on_large_unexpected_site():
    the_spec = spec(expect_drops_at=("apache",))
    result = result_with_drops(the_spec, {"apache": 100, "tomcat": 90,
                                          "mysql": 0})
    failures = result.check_claims()
    assert any("unexpectedly large" in f for f in failures)


def test_claims_tolerate_small_companion_drops():
    the_spec = spec(expect_drops_at=("apache",))
    result = result_with_drops(the_spec, {"apache": 1000, "tomcat": 30,
                                          "mysql": 0})
    assert result.check_claims() == []


def test_no_drops_claim():
    the_spec = spec(expect_no_drops=True)
    clean = result_with_drops(the_spec, {"nginx": 0, "xtomcat": 0,
                                         "xmysql": 0})
    dirty = result_with_drops(the_spec, {"nginx": 0, "xtomcat": 1,
                                         "xmysql": 0})
    assert clean.check_claims() == []
    assert dirty.check_claims()


# ----------------------------------------------------------------------
# the shipped figure specs
# ----------------------------------------------------------------------
def test_fig03_spec_expectations():
    the_spec = fig03_vm_consolidation.SPEC
    assert the_spec.nx == 0
    assert the_spec.bottleneck_tier == "app"
    assert the_spec.expect_drops_at == ("apache",)


def test_fig10_spec_expectations():
    the_spec = fig10_nx3_xtomcat.SPEC
    assert the_spec.nx == 3
    assert the_spec.expect_no_drops


def test_unknown_bottleneck_kind_rejected():
    from repro.experiments.timeline import run_timeline

    with pytest.raises(ValueError):
        run_timeline(spec(bottleneck_kind="cosmic-rays"))
