"""Unit tests for the service-graph core (repro.topology.graph)."""

import pytest

from repro.topology.graph import (
    EdgeSpec,
    NodeSpec,
    ServiceGraph,
    build_graph,
    fan_out,
)


def diamond():
    """entry -> {left, right} -> sink."""
    return ServiceGraph(
        [NodeSpec("entry"), NodeSpec("left"), NodeSpec("right"),
         NodeSpec("sink")],
        [EdgeSpec("entry", "left"), EdgeSpec("entry", "right"),
         EdgeSpec("left", "sink"), EdgeSpec("right", "sink")],
    )


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_empty_graph_rejected():
    with pytest.raises(ValueError, match="at least one node"):
        ServiceGraph([])


def test_duplicate_node_names_rejected():
    with pytest.raises(ValueError, match="duplicate node names"):
        ServiceGraph([NodeSpec("a"), NodeSpec("a")])


def test_unknown_entry_rejected():
    with pytest.raises(ValueError, match="not a graph node"):
        ServiceGraph([NodeSpec("a")], entry="b")


def test_edge_with_unknown_endpoint_rejected():
    with pytest.raises(ValueError, match="unknown node 'ghost'"):
        ServiceGraph([NodeSpec("a")], [EdgeSpec("a", "ghost")])


def test_duplicate_edge_rejected():
    with pytest.raises(ValueError, match="duplicate edge"):
        ServiceGraph(
            [NodeSpec("a"), NodeSpec("b")],
            [EdgeSpec("a", "b"), EdgeSpec("a", "b")],
        )


def test_self_loop_rejected_at_edge_construction():
    with pytest.raises(ValueError, match="self-loop"):
        EdgeSpec("a", "a")


def test_cycle_rejected():
    with pytest.raises(ValueError, match="cycle"):
        ServiceGraph(
            [NodeSpec("a"), NodeSpec("b"), NodeSpec("c")],
            [EdgeSpec("a", "b"), EdgeSpec("b", "c"), EdgeSpec("c", "b")],
        )


def test_unreachable_node_rejected():
    with pytest.raises(ValueError, match="unreachable.*'island'"):
        ServiceGraph(
            [NodeSpec("a"), NodeSpec("b"), NodeSpec("island")],
            [EdgeSpec("a", "b")],
        )


def test_quorum_exceeding_out_degree_rejected():
    with pytest.raises(ValueError, match="quorum 3 exceeds out-degree 2"):
        ServiceGraph(
            [NodeSpec("root", quorum=3), NodeSpec("x"), NodeSpec("y")],
            [EdgeSpec("root", "x"), EdgeSpec("root", "y")],
        )


def test_quorum_below_one_rejected_on_the_node():
    with pytest.raises(ValueError, match="quorum must be >= 1"):
        NodeSpec("root", quorum=0)


# ----------------------------------------------------------------------
# queries and presets
# ----------------------------------------------------------------------
def test_topo_order_breaks_ties_in_declaration_order():
    graph = diamond()
    assert graph.topo_order() == ["entry", "left", "right", "sink"]


def test_fan_out_preset_shape():
    graph = fan_out(NodeSpec("root"),
                    [NodeSpec("leaf1"), NodeSpec("leaf2")])
    assert graph.entry == "root"
    assert graph.topo_order() == ["root", "leaf1", "leaf2"]
    assert [(e.source, e.target) for e in graph.edges] == [
        ("root", "leaf1"), ("root", "leaf2"),
    ]


def test_edge_index_pairs_follow_topo_positions():
    graph = diamond()
    # positions: entry=0, left=1, right=2, sink=3
    assert sorted(graph.edge_index_pairs()) == [
        (0, 1), (0, 2), (1, 3), (2, 3),
    ]


# ----------------------------------------------------------------------
# built systems: the gather runs on both servlet drivers
# ----------------------------------------------------------------------
def _run_fan_out(sync_root, quorum=None, seed=42, rate=60.0, until=4.0):
    root = NodeSpec("root", sync=sync_root, threads=8, workers=2,
                    quorum=quorum)
    leaves = [NodeSpec(f"leaf{i + 1}", threads=4) for i in range(3)]
    system = build_graph(fan_out(root, leaves), seed=seed)
    system.open_loop(rate)
    system.sim.run(until=until)
    return system


@pytest.mark.parametrize("sync_root", [True, False])
def test_gather_drives_every_leg_on_both_drivers(sync_root):
    system = _run_fan_out(sync_root)
    totals = system.gather_totals()
    assert totals["gathers"] > 0
    assert totals["legs"] == 3 * totals["gathers"]
    assert totals["leg_failures"] == 0
    # all-of barrier: no leg is cancelled or wasted
    assert totals["legs_cancelled"] == 0
    assert totals["legs_wasted"] == 0
    # gathers count at launch, so the sim-end cutoff may leave one in
    # flight behind its completed count
    completed = len(system.log.completed)
    assert 0 < completed <= totals["gathers"]


@pytest.mark.parametrize("sync_root", [True, False])
def test_quorum_gather_wastes_the_straggler(sync_root):
    system = _run_fan_out(sync_root, quorum=2)
    totals = system.gather_totals()
    assert totals["gathers"] > 0
    # first-2-of-3: every settled gather leaves exactly one losing leg
    # behind (gathers still in flight at the sim-end cutoff have not
    # picked their loser yet)
    losers = totals["legs_cancelled"] + totals["legs_wasted"]
    assert len(system.log.completed) <= losers <= totals["gathers"]


@pytest.mark.parametrize("sync_root", [True, False])
def test_quorum_leg_outcome_is_deterministic_per_seed(sync_root):
    """Which legs lose the quorum race is replayed exactly from the
    seed — and actually depends on it."""

    def observe(seed):
        system = _run_fan_out(sync_root, quorum=2, seed=seed)
        return (system.gather_totals(), system.log.summary(4.0))

    assert observe(42) == observe(42)
    assert observe(42) != observe(7)
