"""Unit tests for the service-graph core (repro.topology.graph)."""

import pytest

from repro.topology.graph import (
    EdgeSpec,
    NodeSpec,
    ServiceGraph,
    build_graph,
    fan_out,
)


def diamond():
    """entry -> {left, right} -> sink."""
    return ServiceGraph(
        [NodeSpec("entry"), NodeSpec("left"), NodeSpec("right"),
         NodeSpec("sink")],
        [EdgeSpec("entry", "left"), EdgeSpec("entry", "right"),
         EdgeSpec("left", "sink"), EdgeSpec("right", "sink")],
    )


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_empty_graph_rejected():
    with pytest.raises(ValueError, match="at least one node"):
        ServiceGraph([])


def test_duplicate_node_names_rejected():
    with pytest.raises(ValueError, match="duplicate node names"):
        ServiceGraph([NodeSpec("a"), NodeSpec("a")])


def test_unknown_entry_rejected():
    with pytest.raises(ValueError, match="not a graph node"):
        ServiceGraph([NodeSpec("a")], entry="b")


def test_edge_with_unknown_endpoint_rejected():
    with pytest.raises(ValueError, match="unknown node 'ghost'"):
        ServiceGraph([NodeSpec("a")], [EdgeSpec("a", "ghost")])


def test_duplicate_edge_rejected():
    with pytest.raises(ValueError, match="duplicate edge"):
        ServiceGraph(
            [NodeSpec("a"), NodeSpec("b")],
            [EdgeSpec("a", "b"), EdgeSpec("a", "b")],
        )


def test_self_loop_rejected_at_edge_construction():
    with pytest.raises(ValueError, match="self-loop"):
        EdgeSpec("a", "a")


def test_cycle_rejected():
    with pytest.raises(ValueError, match="cycle"):
        ServiceGraph(
            [NodeSpec("a"), NodeSpec("b"), NodeSpec("c")],
            [EdgeSpec("a", "b"), EdgeSpec("b", "c"), EdgeSpec("c", "b")],
        )


def test_unreachable_node_rejected():
    with pytest.raises(ValueError, match="unreachable.*'island'"):
        ServiceGraph(
            [NodeSpec("a"), NodeSpec("b"), NodeSpec("island")],
            [EdgeSpec("a", "b")],
        )


def test_quorum_exceeding_out_degree_rejected():
    with pytest.raises(ValueError, match="quorum 3 exceeds out-degree 2"):
        ServiceGraph(
            [NodeSpec("root", quorum=3), NodeSpec("x"), NodeSpec("y")],
            [EdgeSpec("root", "x"), EdgeSpec("root", "y")],
        )


def test_quorum_below_one_rejected_on_the_node():
    with pytest.raises(ValueError, match="quorum must be >= 1"):
        NodeSpec("root", quorum=0)


# ----------------------------------------------------------------------
# queries and presets
# ----------------------------------------------------------------------
def test_topo_order_breaks_ties_in_declaration_order():
    graph = diamond()
    assert graph.topo_order() == ["entry", "left", "right", "sink"]


def test_fan_out_preset_shape():
    graph = fan_out(NodeSpec("root"),
                    [NodeSpec("leaf1"), NodeSpec("leaf2")])
    assert graph.entry == "root"
    assert graph.topo_order() == ["root", "leaf1", "leaf2"]
    assert [(e.source, e.target) for e in graph.edges] == [
        ("root", "leaf1"), ("root", "leaf2"),
    ]


def test_edge_index_pairs_follow_topo_positions():
    graph = diamond()
    # positions: entry=0, left=1, right=2, sink=3
    assert sorted(graph.edge_index_pairs()) == [
        (0, 1), (0, 2), (1, 3), (2, 3),
    ]


# ----------------------------------------------------------------------
# built systems: the gather runs on both servlet drivers
# ----------------------------------------------------------------------
def _run_fan_out(sync_root, quorum=None, seed=42, rate=60.0, until=4.0):
    root = NodeSpec("root", sync=sync_root, threads=8, workers=2,
                    quorum=quorum)
    leaves = [NodeSpec(f"leaf{i + 1}", threads=4) for i in range(3)]
    system = build_graph(fan_out(root, leaves), seed=seed)
    system.open_loop(rate)
    system.sim.run(until=until)
    return system


@pytest.mark.parametrize("sync_root", [True, False])
def test_gather_drives_every_leg_on_both_drivers(sync_root):
    system = _run_fan_out(sync_root)
    totals = system.gather_totals()
    assert totals["gathers"] > 0
    assert totals["legs"] == 3 * totals["gathers"]
    assert totals["leg_failures"] == 0
    # all-of barrier: no leg is cancelled or wasted
    assert totals["legs_cancelled"] == 0
    assert totals["legs_wasted"] == 0
    # gathers count at launch, so the sim-end cutoff may leave one in
    # flight behind its completed count
    completed = len(system.log.completed)
    assert 0 < completed <= totals["gathers"]


@pytest.mark.parametrize("sync_root", [True, False])
def test_quorum_gather_wastes_the_straggler(sync_root):
    system = _run_fan_out(sync_root, quorum=2)
    totals = system.gather_totals()
    assert totals["gathers"] > 0
    # first-2-of-3: every settled gather leaves exactly one losing leg
    # behind (gathers still in flight at the sim-end cutoff have not
    # picked their loser yet)
    losers = totals["legs_cancelled"] + totals["legs_wasted"]
    assert len(system.log.completed) <= losers <= totals["gathers"]


# ----------------------------------------------------------------------
# cache and storage node kinds
# ----------------------------------------------------------------------
def test_unknown_node_kind_rejected():
    with pytest.raises(ValueError, match="kind must be one of"):
        NodeSpec("n", kind="queue")


def test_cache_node_requires_capacity():
    with pytest.raises(ValueError, match="cache_capacity >= 1"):
        NodeSpec("c", kind="cache")
    with pytest.raises(ValueError, match="cache_capacity >= 1"):
        NodeSpec("c", kind="cache", cache_capacity=0)
    with pytest.raises(ValueError, match="keyspace must be >= 1"):
        NodeSpec("c", kind="cache", cache_capacity=8, keyspace=0)


def test_storage_node_requires_service_time():
    with pytest.raises(ValueError, match="positive storage_service_time"):
        NodeSpec("s", kind="storage")
    with pytest.raises(ValueError, match="write_fraction must be in"):
        NodeSpec("s", kind="storage", storage_service_time=0.001,
                 write_fraction=1.5)


def test_cache_node_with_two_successors_rejected():
    with pytest.raises(ValueError, match="at most one successor"):
        ServiceGraph(
            [NodeSpec("c", kind="cache", cache_capacity=8),
             NodeSpec("x"), NodeSpec("y")],
            [EdgeSpec("c", "x"), EdgeSpec("c", "y")],
        )


def _cache_graph(coalesce=False, keyspace=4, ttl=None, db_work=0.0):
    return ServiceGraph(
        [NodeSpec("cache", sync=False, workers=2, kind="cache",
                  cache_capacity=64, cache_ttl=ttl, keyspace=keyspace,
                  coalesce=coalesce),
         NodeSpec("db", threads=4, pre_work=db_work)],
        [EdgeSpec("cache", "db")],
        entry="cache",
    )


def test_built_cache_node_registers_and_serves():
    system = build_graph(_cache_graph(), seed=42)
    assert list(system.caches) == ["cache"]
    cache = system.caches["cache"]
    assert cache.capacity == 64
    system.open_loop(100.0)
    system.sim.run(until=5.0)
    stats = cache.stats
    # a 4-key space against capacity 64: at most 4 cold misses, then
    # every lookup hits without touching db
    assert stats.misses <= 4
    assert stats.hits > 100
    assert stats.hit_ratio() > 0.9
    db = system.server("db")
    assert db.stats.completed == stats.misses


def test_cache_node_coalesce_flag_reaches_the_handler():
    # a 50 ms backing fetch against 2.5 ms arrivals on a 4-key space:
    # the cold-start misses overlap, so followers must coalesce
    system = build_graph(_cache_graph(coalesce=True, db_work=0.05), seed=42)
    system.open_loop(400.0)
    system.sim.run(until=2.0)
    stats = system.caches["cache"].stats
    assert stats.coalesced > 0
    # followers count their lookup as a miss before parking, but only
    # leaders reach the backing tier: db served misses - coalesced
    assert system.server("db").stats.completed == stats.misses - stats.coalesced


def test_cache_ttl_forces_refetches():
    system = build_graph(_cache_graph(ttl=0.5), seed=42)
    system.open_loop(100.0)
    system.sim.run(until=5.0)
    stats = system.caches["cache"].stats
    assert stats.expirations > 0
    assert stats.misses > 4              # cold misses plus TTL refetches


def test_built_storage_node_registers_and_serves():
    graph = ServiceGraph(
        [NodeSpec("front", sync=False, workers=2),
         NodeSpec("store", threads=16, kind="storage",
                  storage_service_time=0.001, write_fraction=0.5,
                  write_buffer=32)],
        [EdgeSpec("front", "store")],
        entry="front",
    )
    system = build_graph(graph, seed=42)
    assert list(system.storages) == ["store"]
    store = system.storages["store"]
    assert store.buffer_capacity == 32
    system.open_loop(200.0)
    system.sim.run(until=4.0)
    assert store.stats.reads > 0
    assert store.stats.writes > 0
    assert len(system.log.completed) > 0


def test_admission_override_builds_a_policy_server():
    from repro.servers import CoDelAdmission
    from repro.servers.policies import AdmissionSpec
    from repro.servers.runtime import PolicyServer

    graph = ServiceGraph(
        [NodeSpec("front", sync=False, workers=2),
         NodeSpec("db", threads=4,
                  admission=AdmissionSpec("codel", depth=16,
                                          target=0.02, interval=0.1))],
        [EdgeSpec("front", "db")],
        entry="front",
    )
    system = build_graph(graph, seed=42)
    db = system.server("db")
    assert isinstance(db, PolicyServer)
    assert isinstance(db.admission, CoDelAdmission)
    assert db.admission.target == 0.02
    system.open_loop(50.0)
    system.sim.run(until=2.0)
    assert len(system.log.completed) > 0


def test_admission_must_be_a_spec():
    with pytest.raises(ValueError, match="admission must be an"):
        NodeSpec("n", admission="codel")


@pytest.mark.parametrize("sync_root", [True, False])
def test_quorum_leg_outcome_is_deterministic_per_seed(sync_root):
    """Which legs lose the quorum race is replayed exactly from the
    seed — and actually depends on it."""

    def observe(seed):
        system = _run_fan_out(sync_root, quorum=2, seed=seed)
        return (system.gather_totals(), system.log.summary(4.0))

    assert observe(42) == observe(42)
    assert observe(42) != observe(7)
