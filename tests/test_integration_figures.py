"""Integration tests: the paper's figures, end to end, at full scale.

Each test runs one evaluation scenario (shorter than the benchmark
version but with the real WL 7000 workload) and asserts the figure's
qualitative claim.  These are the repository's ground truth that the
whole stack — kernel, CPU, TCP, servers, app, workload, injectors,
monitoring, analysis — composes into the paper's phenomena.
"""

import pytest

from repro.experiments import (
    fig03_vm_consolidation,
    fig05_log_flush,
    fig07_nx1,
    fig08_nx2_mysql,
    fig09_nx2_xtomcat,
    fig10_nx3_xtomcat,
    fig11_nx3_xmysql,
    run_timeline,
)

pytestmark = [pytest.mark.integration, pytest.mark.slow]

#: two bursts are enough to demonstrate every claim
SHORT = 26.0


@pytest.fixture(scope="module")
def fig03():
    return run_timeline(fig03_vm_consolidation.SPEC, duration=SHORT)


def test_fig03_upstream_ctqo_drops_at_apache(fig03):
    assert fig03.check_claims() == []
    assert fig03.drops["apache"] > 50


def test_fig03_tomcat_queue_caps_at_max_sys_q_depth(fig03):
    assert fig03.run.queue_max()["tomcat"] == 293


def test_fig03_apache_second_process_plateau(fig03):
    assert fig03.run.system.servers["web"].processes == 2
    assert fig03.run.queue_max()["apache"] == 428


def test_fig03_vlrt_spikes_align_with_bursts(fig03):
    series = fig03.panel_c()
    burst_times = fig03.run.injectors[0].burst_times
    for burst_at in burst_times:
        window = series.slice(burst_at - 0.5, burst_at + 2.5)
        assert sum(window.values) > 0, f"no VLRT near burst at {burst_at}"
    quiet = series.slice(2.0, burst_times[0] - 2.0)
    assert sum(quiet.values) == 0, "VLRT before any millibottleneck"


def test_fig03_response_modes_at_3s(fig03):
    modes = fig03.run.log.modes()
    assert modes.get(1, 0) > 20      # the 3-second cluster
    assert modes[0] > 10 * modes[1]  # the bulk is still fast


def test_fig03_ctqo_classified_upstream(fig03):
    events = [e for e in fig03.run.ctqo_events()
              if e.dropping_server == "apache" and e.drops > 20]
    assert events
    assert all(e.direction == "upstream" for e in events)


def test_fig05_log_flush_cascades_to_apache():
    result = run_timeline(fig05_log_flush.SPEC, duration=45.0)
    assert result.check_claims() == []
    # the I/O millibottleneck is visible in the MySQL iowait series
    episodes = [e for e in result.run.millibottlenecks() if e.kind == "io"]
    assert episodes and episodes[0].resource == "mysql"
    # and classified as upstream CTQO towards apache
    events = [e for e in result.run.ctqo_events()
              if e.dropping_server == "apache" and e.drops > 20]
    assert events and all(e.direction == "upstream" for e in events)


def test_fig07_nx1_drops_move_to_tomcat():
    result = run_timeline(fig07_nx1.SPEC, duration=SHORT)
    assert result.check_claims() == []
    assert result.drops["nginx"] == 0
    assert result.run.queue_max()["tomcat"] == 293


def test_fig07_variant_mysql_millibottleneck_also_drops_at_tomcat():
    result = run_timeline(fig07_nx1.SPEC_MYSQL, duration=SHORT)
    assert result.check_claims() == []
    assert result.drops["nginx"] == 0
    assert result.drops["mysql"] == 0


def test_fig08_nx2_mysql_drops_at_228():
    result = run_timeline(fig08_nx2_mysql.SPEC, duration=SHORT)
    assert result.check_claims() == []
    assert result.run.queue_max()["mysql"] == 228
    assert result.drops["nginx"] == 0 and result.drops["xtomcat"] == 0


def test_fig09_xtomcat_batch_floods_mysql():
    result = run_timeline(fig09_nx2_xtomcat.SPEC, duration=SHORT)
    assert result.check_claims() == []
    assert result.drops["mysql"] > 0
    # the async tiers themselves never drop
    assert result.drops["nginx"] == 0 and result.drops["xtomcat"] == 0
    # XTomcat buffered far past any synchronous MaxSysQDepth
    assert result.run.queue_max()["xtomcat"] > 400


def test_fig10_nx3_no_drops_no_vlrt():
    result = run_timeline(fig10_nx3_xtomcat.SPEC, duration=SHORT)
    assert result.check_claims() == []
    assert result.summary()["vlrt"] == 0
    assert result.summary()["failed"] == 0


def test_fig11_nx3_log_flush_no_drops():
    result = run_timeline(fig11_nx3_xmysql.SPEC, duration=45.0)
    assert result.check_claims() == []
    assert result.summary()["vlrt"] == 0
    # XMySQL buffered the freeze in its lightweight queue
    assert result.run.queue_max()["xmysql"] > 100


def test_same_seed_same_figure():
    """Full determinism at system scale: identical runs, identical drops
    and identical response-time multiset."""
    a = run_timeline(fig03_vm_consolidation.SPEC, duration=SHORT)
    b = run_timeline(fig03_vm_consolidation.SPEC, duration=SHORT)
    assert a.drops == b.drops
    assert sorted(a.run.log.response_times()) == sorted(
        b.run.log.response_times()
    )
    assert a.run.queue_max() == b.run.queue_max()


@pytest.mark.integration
def test_replication_dilutes_but_keeps_ctqo():
    """Extension check: adding an app replica reduces drops but the
    round-robin head-of-line blocking keeps upstream CTQO alive."""
    from repro.experiments import replication

    single = replication.run(replicas=1, duration=26.0,
                             burst_times=(15.0,))
    double = replication.run(replicas=2, duration=26.0,
                             burst_times=(15.0,))
    assert single["drops"]["apache"] > 0
    assert double["drops"]["apache"] > 0           # still drops
    assert double["drops"]["apache"] < single["drops"]["apache"]
