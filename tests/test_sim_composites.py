"""Composite-event and cross-primitive interaction tests for the kernel:
processes waiting on AnyOf/AllOf, resources with timeouts, the idioms
the server models are built from."""

import pytest

from repro.sim import ProcessInterrupt, Resource, Simulator, Store


@pytest.fixture
def sim():
    return Simulator(seed=23)


def test_process_waits_on_any_of_timeout_vs_event(sim):
    """The acquire-or-give-up idiom used for call timeouts."""
    ev = sim.event()
    outcomes = []

    def proc():
        timeout = sim.timeout(2.0, value="gave-up")
        fired = yield sim.any_of([ev, timeout])
        if ev in fired:
            outcomes.append(("event", fired[ev]))
        else:
            outcomes.append(("timeout", fired[timeout]))

    sim.process(proc())
    sim.call_in(5.0, ev.succeed, "late")  # after the timeout
    sim.run()
    assert outcomes == [("timeout", "gave-up")]


def test_process_waits_on_all_of_processes(sim):
    def worker(delay, value):
        yield delay
        return value

    results = []

    def coordinator():
        children = [sim.process(worker(d, d)) for d in (1.0, 3.0, 2.0)]
        values = yield sim.all_of(children)
        results.append((sim.now, sorted(values.values())))

    sim.process(coordinator())
    sim.run()
    assert results == [(3.0, [1.0, 2.0, 3.0])]


def test_all_of_fails_fast_on_child_process_failure(sim):
    def ok_worker():
        yield 5.0

    def bad_worker():
        yield 1.0
        raise RuntimeError("child died")

    caught = []

    def coordinator():
        children = [sim.process(ok_worker()), sim.process(bad_worker())]
        try:
            yield sim.all_of(children)
        except RuntimeError as exc:
            caught.append((sim.now, str(exc)))

    sim.process(coordinator())
    sim.run()
    assert caught == [(1.0, "child died")]


def test_resource_acquire_with_timeout_and_cancel(sim):
    """Acquire-or-timeout, with proper cancellation of the stale grant —
    the pattern a bounded-wait connection pool would use."""
    res = Resource(sim, capacity=1)
    res.acquire()  # exhaust
    outcomes = []

    def impatient():
        grant = res.acquire()
        timeout = sim.timeout(1.0)
        fired = yield sim.any_of([grant, timeout])
        if grant in fired:
            outcomes.append("got it")
            res.release()
        else:
            assert res.cancel(grant)
            outcomes.append("timed out")

    sim.process(impatient())
    sim.call_in(5.0, res.release)  # frees long after the timeout
    sim.run()
    assert outcomes == ["timed out"]
    assert res.in_use == 0  # the late release did not leak to a ghost


def test_store_consumer_interrupted_while_waiting(sim):
    store = Store(sim)
    outcomes = []

    def consumer():
        try:
            yield store.get()
        except ProcessInterrupt:
            outcomes.append("interrupted")

    proc = sim.process(consumer())
    sim.call_in(1.0, proc.interrupt)
    sim.call_in(2.0, store.put, "late-item")
    sim.run()
    assert outcomes == ["interrupted"]
    # the abandoned getter was already granted the item when it arrived;
    # semantics: an interrupted consumer may lose an in-flight item, the
    # same way a killed thread loses what was handed to it.


def test_two_producers_two_consumers_fifo(sim):
    store = Store(sim)
    consumed = []

    def producer(name, items, gap):
        for item in items:
            yield gap
            store.put((name, item))

    def consumer(name):
        while True:
            item = yield store.get()
            consumed.append((name, item))

    sim.process(producer("p1", [1, 2, 3], 1.0))
    sim.process(producer("p2", ["a", "b"], 1.5))
    sim.process(consumer("c1"))
    sim.process(consumer("c2"))
    sim.run(until=10.0)
    items = [item for _c, item in consumed]
    assert items == [("p1", 1), ("p2", "a"), ("p1", 2), ("p2", "b"),
                     ("p1", 3)]


def test_nested_process_spawning_depth(sim):
    """Processes spawning processes spawning processes (the server
    models nest three deep: worker -> drive -> invoke)."""
    trace = []

    def leaf(depth):
        yield 0.1
        trace.append(depth)
        return depth

    def mid(depth):
        value = yield sim.process(leaf(depth + 1))
        trace.append(depth)
        return value

    def root():
        value = yield sim.process(mid(1))
        trace.append(0)
        return value

    p = sim.process(root())
    sim.run()
    assert trace == [2, 1, 0]
    assert p.value == 2


def test_event_callback_ordering_with_processes(sim):
    """Plain callbacks registered before a waiting process run first
    (registration order), which keeps accounting updates ahead of
    consumer wakeups."""
    ev = sim.event()
    order = []
    ev.add_callback(lambda e: order.append("bookkeeping"))

    def waiter():
        yield ev
        order.append("process")

    sim.process(waiter())
    sim.call_in(1.0, ev.succeed, None)
    sim.run()
    assert order == ["bookkeeping", "process"]


def test_store_cancel_get_prevents_item_loss(sim):
    """The safe form of the interrupted-consumer pattern: cancel the
    stale get so a later item goes to a live consumer."""
    store = Store(sim)
    outcomes = []

    def consumer(name):
        grant = store.get()
        try:
            item = yield grant
            outcomes.append((name, item))
        except ProcessInterrupt:
            store.cancel(grant)
            outcomes.append((name, "cancelled"))

    doomed = sim.process(consumer("doomed"))
    sim.call_in(1.0, doomed.interrupt)
    sim.call_in(2.0, lambda: sim.process(consumer("alive")))
    sim.call_in(3.0, store.put, "item")
    sim.run()
    assert ("doomed", "cancelled") in outcomes
    assert ("alive", "item") in outcomes  # nothing lost


def test_store_cancel_unknown_grant_returns_false(sim):
    store = Store(sim)
    store.put("x")
    grant = store.get()  # satisfied immediately, never queued
    assert store.cancel(grant) is False
