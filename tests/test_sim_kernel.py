"""Unit tests for the discrete-event kernel (repro.sim.kernel)."""

import pytest

from repro.sim import SimulationDeadlock, Simulator


def test_callbacks_run_in_time_order():
    sim = Simulator()
    hits = []
    sim.call_in(2.0, hits.append, "late")
    sim.call_in(1.0, hits.append, "early")
    sim.run()
    assert hits == ["early", "late"]


def test_same_time_callbacks_run_in_insertion_order():
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.call_at(5.0, hits.append, i)
    sim.run()
    assert hits == list(range(10))


def test_priority_breaks_ties_before_insertion_order():
    sim = Simulator()
    hits = []
    sim.call_at(1.0, hits.append, "normal")
    sim.call_at(1.0, hits.append, "first", priority=-1)
    sim.call_at(1.0, hits.append, "last", priority=1)
    sim.run()
    assert hits == ["first", "normal", "last"]


def test_now_advances_to_callback_time():
    sim = Simulator()
    seen = []
    sim.call_in(3.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.5]
    assert sim.now == 3.5


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.call_in(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(0.5, lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    hits = []
    sim.call_in(1.0, hits.append, "in")
    sim.call_in(10.0, hits.append, "out")
    sim.run(until=5.0)
    assert hits == ["in"]
    assert sim.now == 5.0  # clock advanced exactly to the horizon


def test_run_until_can_resume():
    sim = Simulator()
    hits = []
    sim.call_in(1.0, hits.append, "a")
    sim.call_in(10.0, hits.append, "b")
    sim.run(until=5.0)
    sim.run(until=20.0)
    assert hits == ["a", "b"]


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.call_in(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=0.5)


def test_error_on_starvation():
    sim = Simulator()
    sim.call_in(1.0, lambda: None)
    with pytest.raises(SimulationDeadlock):
        sim.run(until=100.0, error_on_starvation=True)


def test_stop_halts_run():
    sim = Simulator()
    hits = []
    sim.call_in(1.0, hits.append, "a")
    sim.call_in(2.0, sim.stop)
    sim.call_in(3.0, hits.append, "b")
    sim.run()
    assert hits == ["a"]
    # resumable after stop
    sim.run()
    assert hits == ["a", "b"]


def test_callbacks_scheduled_during_run_execute():
    sim = Simulator()
    hits = []

    def first():
        sim.call_in(1.0, hits.append, "second")

    sim.call_in(1.0, first)
    sim.run()
    assert hits == ["second"]
    assert sim.now == 2.0


def test_zero_delay_callback_runs_same_time():
    sim = Simulator()
    times = []
    sim.call_in(1.0, lambda: sim.call_in(0.0, times.append, sim.now))
    sim.run()
    assert times == [1.0]


def test_executed_events_counter():
    sim = Simulator()
    for _ in range(5):
        sim.call_in(1.0, lambda: None)
    sim.run()
    assert sim.executed_events == 5


def test_fork_rng_streams_are_independent_and_deterministic():
    values = []
    for _ in range(2):
        sim = Simulator(seed=42)
        a = sim.fork_rng("a")
        b = sim.fork_rng("b")
        values.append(([a.random() for _ in range(3)], [b.random() for _ in range(3)]))
    assert values[0] == values[1]  # reproducible from the seed
    assert values[0][0] != values[0][1]  # distinct streams differ


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.call_in(4.0, lambda: None)
    sim.call_in(2.0, lambda: None)
    assert sim.peek() == 2.0
