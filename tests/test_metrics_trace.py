"""Unit tests for request logging (repro.metrics.trace)."""

import pytest

from repro.metrics import RequestLog, RequestRecord


def record(rid, start, rt, kind="K", drops=(), failed=False):
    return RequestRecord(rid, kind, start, start + rt, drops=drops,
                         failed=failed)


def test_basic_aggregates():
    log = RequestLog()
    log.add(record(1, 0.0, 0.01))
    log.add(record(2, 1.0, 0.02))
    log.add(record(3, 2.0, 5.0, failed=True))
    assert len(log) == 3
    assert len(log.completed) == 2
    assert len(log.failures) == 1
    assert log.response_times() == [pytest.approx(0.01), pytest.approx(0.02)]
    assert len(log.response_times(include_failures=True)) == 3


def test_throughput_counts_completed_only():
    log = RequestLog()
    log.add(record(1, 0.0, 0.01))
    log.add(record(2, 0.0, 0.01, failed=True))
    assert log.throughput(10.0) == pytest.approx(0.1)
    with pytest.raises(ValueError):
        log.throughput(0)


def test_percentiles():
    log = RequestLog()
    for i in range(100):
        log.add(record(i, 0.0, (i + 1) / 1000.0))
    assert log.percentile(50) == pytest.approx(0.0505, rel=0.02)
    assert log.percentile(99) == pytest.approx(0.099, rel=0.02)


def test_percentile_agrees_with_core_tail_on_small_n():
    """The log delegates to core.tail.percentiles: the two public
    percentile surfaces must agree exactly, including the awkward
    small-n interpolation cases."""
    from repro.core.tail import percentiles

    times = [0.010, 0.020, 0.070]
    log = RequestLog()
    for i, rt in enumerate(times):
        log.add(record(i, 0.0, rt))
    for q in (0, 25, 50, 75, 90, 95, 99, 99.9, 100):
        assert log.percentile(q) == percentiles(times, qs=(q,))[q]


def test_percentile_agrees_with_core_tail_on_exact_boundaries():
    from repro.core.tail import percentiles

    times = [i / 10.0 for i in range(1, 11)]  # 0.1 .. 1.0
    log = RequestLog()
    for i, rt in enumerate(times):
        log.add(record(i, 0.0, rt))
    # q=0/100 hit the extremes exactly; q=50 interpolates midway
    assert log.percentile(0) == pytest.approx(0.1)
    assert log.percentile(100) == pytest.approx(1.0)
    assert log.percentile(50) == pytest.approx(0.55)
    for q in (0, 10, 50, 90, 100):
        assert log.percentile(q) == percentiles(times, qs=(q,))[q]


def test_percentile_empty_log_matches_core_tail_zero():
    from repro.core.tail import percentiles

    assert RequestLog().percentile(99) == 0.0
    assert percentiles([], qs=(99,))[99] == 0.0


def test_vlrt_selects_slow_and_failed():
    log = RequestLog()
    log.add(record(1, 0.0, 0.01))
    log.add(record(2, 0.0, 3.2))              # retransmitted once
    log.add(record(3, 0.0, 0.5, failed=True))  # failed: always VLRT
    vlrt = log.vlrt()
    assert {r.request_id for r in vlrt} == {2, 3}
    assert log.vlrt_fraction() == pytest.approx(2 / 3)


def test_vlrt_time_series_buckets_by_first_drop():
    log = RequestLog()
    log.add(record(1, 0.0, 3.1, drops=[(0.5, "apache")]))
    log.add(record(2, 0.4, 3.2, drops=[(0.52, "apache")]))
    log.add(record(3, 7.0, 3.5))  # no drop info -> bucketed at start
    series = log.vlrt_time_series(until=10.0, window=0.5)
    assert series.value_at(0.5) == 2
    assert series.value_at(7.0) == 1
    assert sum(series.values) == 3


def test_histogram_clamps_long_times():
    log = RequestLog()
    log.add(record(1, 0.0, 0.05))
    log.add(record(2, 0.0, 25.0))
    edges, counts = log.histogram(bin_width=1.0, max_time=10.0)
    assert counts[0] == 1
    assert counts[-1] == 1  # clamped into the last bin
    assert len(edges) == 10


def test_modes_classification():
    log = RequestLog()
    for rt in (0.01, 0.02, 3.05, 3.1, 6.02, 1.4):
        log.add(record(id(rt), 0.0, rt))
    modes = log.modes()
    assert modes[0] == 3  # two fast + the off-mode 1.4s
    assert modes[1] == 2
    assert modes[2] == 1


def test_drop_sites_counter():
    log = RequestLog()
    log.add(record(1, 0.0, 3.0, drops=[(0.1, "apache"), (3.1, "apache")]))
    log.add(record(2, 0.0, 3.0, drops=[(0.2, "tomcat")]))
    sites = log.drop_sites()
    assert sites == {"apache": 2, "tomcat": 1}
    assert len(log.dropped_requests()) == 2


def test_after_filters_by_start_time():
    log = RequestLog()
    log.add(record(1, 1.0, 0.1))
    log.add(record(2, 5.0, 0.1))
    filtered = log.after(2.0)
    assert [r.request_id for r in filtered.records] == [2]
    assert len(log) == 2  # original untouched


def test_summary_keys():
    log = RequestLog()
    log.add(record(1, 0.0, 0.01))
    summary = log.summary(10.0)
    for key in ("requests", "completed", "failed", "throughput_rps",
                "mean_ms", "p50_ms", "p99_ms", "vlrt", "drop_sites"):
        assert key in summary


def test_empty_log_summary():
    summary = RequestLog().summary(10.0)
    assert summary["requests"] == 0
    assert summary["p99_ms"] == 0.0


def test_summary_validates_duration_even_when_empty():
    """A bad window is a caller bug regardless of log contents."""
    with pytest.raises(ValueError):
        RequestLog().summary(0.0)
    with pytest.raises(ValueError):
        RequestLog().summary(-1.0)
