"""Unit tests for the TCP model (repro.net.tcp)."""

import pytest

from repro.net import ConnectionTimeout, NetworkFabric
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=2)


@pytest.fixture
def fabric(sim):
    # zero latency makes arithmetic exact in these unit tests
    return NetworkFabric(sim, latency=0.0, rto=3.0, max_retransmits=3)


def echo_server(sim, listener, service=0.0):
    """Single-threaded echo server used by the tests below."""

    def loop():
        while True:
            exchange = yield listener.accept()
            if service:
                yield service
            exchange.reply(("echo", exchange.payload))

    return sim.process(loop())


def test_request_response_roundtrip(sim, fabric):
    listener = fabric.listener("srv", backlog=8)
    echo_server(sim, listener)
    got = []

    def client():
        exchange = fabric.send(listener, "hello")
        value = yield exchange.response
        got.append((sim.now, value))

    sim.process(client())
    sim.run()
    assert got == [(0.0, ("echo", "hello"))]


def test_latency_applied_both_ways(sim):
    fabric = NetworkFabric(sim, latency=0.1)
    listener = fabric.listener("srv")
    echo_server(sim, listener)
    done = []

    def client():
        exchange = fabric.send(listener, "x")
        yield exchange.response
        done.append(sim.now)

    sim.process(client())
    sim.run()
    assert done == [pytest.approx(0.2)]


def test_backlog_holds_requests_until_accepted(sim, fabric):
    listener = fabric.listener("srv", backlog=4)
    for i in range(3):
        fabric.send(listener, i)
    sim.run()
    assert listener.backlog_length == 3
    assert listener.drops == 0


def test_drop_when_backlog_full(sim, fabric):
    listener = fabric.listener("srv", backlog=2)
    for i in range(3):
        fabric.send(listener, i)
    sim.run(until=1.0)
    assert listener.backlog_length == 2
    assert listener.drops == 1
    assert fabric.packets_dropped == 1


def test_dropped_packet_retransmitted_after_rto(sim, fabric):
    """The 3-second retransmission that creates VLRT requests."""
    listener = fabric.listener("srv", backlog=0)
    replies = []

    def client():
        exchange = fabric.send(listener, "req")
        value = yield exchange.response
        replies.append((sim.now, value, exchange.attempts, len(exchange.drops)))

    sim.process(client())

    # Server comes up only after 2 seconds: the first attempt drops
    # (backlog 0, nobody accepting), the retransmission at t=3 succeeds.
    def late_server():
        yield 2.0
        while True:
            exchange = yield listener.accept()
            exchange.reply("ok")

    sim.process(late_server())
    sim.run(until=20.0)
    assert len(replies) == 1
    t, value, attempts, drops = replies[0]
    assert value == "ok"
    assert t == pytest.approx(3.0)  # the 3-second VLRT signature
    assert attempts == 2
    assert drops == 1


def test_retransmission_schedule_is_3_6_9(sim, fabric):
    """Attempt k arrives k*rto after the first send (Fig 1 modes)."""
    listener = fabric.listener("srv", backlog=0)
    exchange = fabric.send(listener, "req")
    sim.run(until=20.0)
    assert [pytest.approx(t) for t, _name in exchange.drops] == [0.0, 3.0, 6.0, 9.0]


def test_exhausted_retransmissions_fail_with_timeout(sim, fabric):
    listener = fabric.listener("srv", backlog=0)
    failures = []

    def client():
        exchange = fabric.send(listener, "req")
        try:
            yield exchange.response
        except ConnectionTimeout as exc:
            failures.append((sim.now, len(exc.exchange.drops)))

    sim.process(client())
    sim.run(until=30.0)
    assert failures == [(pytest.approx(9.0), 4)]  # initial + 3 retransmits
    assert fabric.requests_timed_out == 1


def test_waiting_accepter_bypasses_backlog(sim, fabric):
    listener = fabric.listener("srv", backlog=0)
    got = []

    def server():
        exchange = yield listener.accept()
        got.append(exchange.payload)
        exchange.reply("ok")

    sim.process(server())

    def client():
        yield 1.0
        fabric.send(listener, "direct")

    sim.process(client())
    sim.run()
    assert got == ["direct"]
    assert listener.drops == 0


def test_eager_acceptor_admits_ahead_of_backlog(sim, fabric):
    """Async-server admission: the acceptor sees packets first."""
    listener = fabric.listener("srv", backlog=1)
    admitted = []
    listener.acceptor = lambda exchange: (admitted.append(exchange), True)[1]
    for i in range(5):
        fabric.send(listener, i)
    sim.run()
    assert len(admitted) == 5
    assert listener.backlog_length == 0
    assert listener.drops == 0


def test_declining_acceptor_falls_back_to_backlog_then_drops(sim, fabric):
    listener = fabric.listener("srv", backlog=1)
    listener.acceptor = lambda exchange: False
    fabric.send(listener, "a")
    fabric.send(listener, "b")
    sim.run(until=1.0)
    assert listener.backlog_length == 1
    assert listener.drops == 1


def test_double_reply_raises(sim, fabric):
    listener = fabric.listener("srv")
    fabric.send(listener, "x")
    sim.run(until=0.1)
    exchange = listener.try_accept()
    exchange.reply(1)
    with pytest.raises(RuntimeError):
        exchange.reply(2)


def test_drop_log_records_time_and_exchange(sim, fabric):
    listener = fabric.listener("srv", backlog=0)
    fabric.send(listener, "x")
    sim.run(until=1.0)
    assert len(listener.drop_log) == 1
    t, exchange = listener.drop_log[0]
    assert t == 0.0
    assert exchange.payload == "x"


def test_parameter_validation(sim):
    with pytest.raises(ValueError):
        NetworkFabric(sim, latency=-1)
    with pytest.raises(ValueError):
        NetworkFabric(sim, rto=0)
    with pytest.raises(ValueError):
        NetworkFabric(sim, max_retransmits=-1)
    fabric = NetworkFabric(sim)
    with pytest.raises(ValueError):
        fabric.listener("x", backlog=-1)


def test_global_counters(sim, fabric):
    listener = fabric.listener("srv", backlog=10)
    echo_server(sim, listener)
    for i in range(4):
        fabric.send(listener, i)
    sim.run()
    assert fabric.packets_sent == 4
    assert fabric.packets_dropped == 0
    assert listener.delivered == 4


def test_fifo_ordering_preserved(sim, fabric):
    listener = fabric.listener("srv", backlog=16)
    order = []

    def server():
        while True:
            exchange = yield listener.accept()
            order.append(exchange.payload)
            exchange.reply(None)

    sim.process(server())
    for i in range(10):
        fabric.send(listener, i)
    sim.run()
    assert order == list(range(10))


# ----------------------------------------------------------------------
# backoff and jitter options
# ----------------------------------------------------------------------
def test_exponential_backoff_schedule(sim):
    """Kernel-style doubling: drops at 0, rto, 3*rto, 7*rto."""
    fabric = NetworkFabric(sim, latency=0.0, rto=3.0, max_retransmits=3,
                           backoff="exponential")
    listener = fabric.listener("srv", backlog=0)
    exchange = fabric.send(listener, "req")
    sim.run(until=60.0)
    assert [pytest.approx(t) for t, _n in exchange.drops] == [
        0.0, 3.0, 9.0, 21.0
    ]


def test_invalid_backoff_rejected(sim):
    with pytest.raises(ValueError):
        NetworkFabric(sim, backoff="fibonacci")


def test_jitter_validation(sim):
    with pytest.raises(ValueError):
        NetworkFabric(sim, jitter=1.0)
    with pytest.raises(ValueError):
        NetworkFabric(sim, jitter=-0.1)


def test_jitter_spreads_latency_within_bounds(sim):
    fabric = NetworkFabric(sim, latency=0.01, jitter=0.5)
    listener = fabric.listener("srv", backlog=1024)
    arrivals = []
    original = listener.deliver

    def spy(exchange):
        arrivals.append(sim.now)
        return original(exchange)

    listener.deliver = spy
    for i in range(200):
        fabric.send(listener, i)
    sim.run()
    assert all(0.005 <= t <= 0.015 for t in arrivals)
    assert len(set(round(t, 9) for t in arrivals)) > 100  # actually spread


def test_jitter_is_deterministic_per_seed(sim):
    def run_once():
        s = Simulator(seed=99)
        fabric = NetworkFabric(s, latency=0.01, jitter=0.3)
        listener = fabric.listener("srv", backlog=1024)
        times = []
        original = listener.deliver

        def spy(exchange):
            times.append(s.now)
            return original(exchange)

        listener.deliver = spy
        for i in range(20):
            fabric.send(listener, i)
        s.run()
        return times

    assert run_once() == run_once()
