"""Unit tests for the RUBBoS-like application (repro.apps.rubbos)."""

import pytest

from repro.apps.rubbos import (
    APP_TIER,
    DB_TIER,
    WEB_TIER,
    InteractionSpec,
    RubbosApplication,
    default_mix,
)
from repro.apps.servlet import Call, Compute, Request, ServletContext
from repro.sim import Simulator
from repro.units import ms


def make_ctx(seed=1):
    sim = Simulator(seed=seed)
    return ServletContext("test", sim, sim.fork_rng("servlet"))


# ----------------------------------------------------------------------
# InteractionSpec validation
# ----------------------------------------------------------------------
def test_spec_query_stage_count_must_match():
    with pytest.raises(ValueError):
        InteractionSpec("X", 1.0, ms(0.1), app_stages=(ms(1),),
                        db_queries=(ms(1),))


def test_spec_queries_without_stages_rejected():
    with pytest.raises(ValueError):
        InteractionSpec("X", 1.0, ms(0.1), db_queries=(ms(1),))


def test_spec_weight_must_be_positive():
    with pytest.raises(ValueError):
        InteractionSpec("X", 0.0, ms(0.1))


def test_static_detection():
    static = InteractionSpec("S", 1.0, ms(0.1))
    dynamic = InteractionSpec("D", 1.0, ms(0.1), app_stages=(ms(1), ms(1)),
                              db_queries=(ms(1),))
    assert static.is_static
    assert not dynamic.is_static


# ----------------------------------------------------------------------
# mix sampling and sizing
# ----------------------------------------------------------------------
def test_default_mix_shape():
    specs = default_mix()
    names = [s.name for s in specs]
    assert names == ["StaticContent", "BrowseStories", "ViewStory"]
    heavy = specs[2]
    assert len(heavy.db_queries) == 3  # the paper's multi-query servlet


def test_sample_respects_weights():
    app = RubbosApplication(default_mix(stochastic=False))
    rng = Simulator(seed=9).fork_rng("sampling")
    counts = {}
    n = 20000
    for _ in range(n):
        spec = app.sample(rng)
        counts[spec.name] = counts.get(spec.name, 0) + 1
    assert counts["StaticContent"] / n == pytest.approx(0.30, abs=0.02)
    assert counts["BrowseStories"] / n == pytest.approx(0.50, abs=0.02)
    assert counts["ViewStory"] / n == pytest.approx(0.20, abs=0.02)


def test_dynamic_fraction():
    app = RubbosApplication(default_mix())
    assert app.dynamic_fraction() == pytest.approx(0.70)


def test_expected_work_matches_hand_computation():
    app = RubbosApplication(default_mix())
    # web: 0.3*0.35 + 0.5*0.25 + 0.2*0.25 ms
    assert app.expected_work(WEB_TIER) == pytest.approx(ms(0.28))
    # app: 0.5*0.9 + 0.2*1.6 ms
    assert app.expected_work(APP_TIER) == pytest.approx(ms(0.77))
    # db: 0.5*0.45 + 0.2*2.0 ms
    assert app.expected_work(DB_TIER) == pytest.approx(ms(0.625))


def test_expected_work_unknown_tier():
    app = RubbosApplication(default_mix())
    with pytest.raises(ValueError):
        app.expected_work("cache")


def test_empty_mix_rejected():
    with pytest.raises(ValueError):
        RubbosApplication([])


# ----------------------------------------------------------------------
# servlet bodies
# ----------------------------------------------------------------------
def drive(gen, call_results=None):
    """Run a servlet generator, returning (steps, result)."""
    steps = []
    results = iter(call_results or [])
    value = None
    while True:
        try:
            step = gen.send(value)
        except StopIteration as stop:
            return steps, stop.value
        steps.append(step)
        value = next(results) if isinstance(step, Call) else None


def test_web_servlet_static_never_calls_downstream():
    app = RubbosApplication(default_mix(stochastic=False))
    request = Request("StaticContent", "StaticContent", 0.0)
    steps, result = drive(app.web_servlet(make_ctx(), request))
    assert [type(s) for s in steps] == [Compute]
    assert steps[0].work == pytest.approx(ms(0.35))
    assert result["tier"] == WEB_TIER


def test_web_servlet_dynamic_relays_to_app_tier():
    app = RubbosApplication(default_mix(stochastic=False))
    request = Request("ViewStory", "ViewStory", 0.0)
    steps, result = drive(
        app.web_servlet(make_ctx(), request), call_results=[{"rows": 7}]
    )
    assert [type(s) for s in steps] == [Compute, Call]
    assert steps[1].target == APP_TIER
    assert result == {"rows": 7}


def test_app_servlet_interleaves_stages_and_queries():
    app = RubbosApplication(default_mix(stochastic=False))
    request = Request("ViewStory", "ViewStory", 0.0)
    steps, result = drive(
        app.app_servlet(make_ctx(), request),
        call_results=[{"rows": 1}] * 3,
    )
    kinds = [type(s).__name__ for s in steps]
    assert kinds == ["Compute", "Call", "Compute", "Call", "Compute",
                     "Call", "Compute"]
    calls = [s for s in steps if isinstance(s, Call)]
    assert all(c.target == DB_TIER for c in calls)
    assert [c.operation for c in calls] == [
        "ViewStory.q0", "ViewStory.q1", "ViewStory.q2",
    ]
    assert result["rows"] == 3


def test_app_servlet_passes_query_cost_as_work_hint():
    app = RubbosApplication(default_mix(stochastic=False))
    request = Request("BrowseStories", "BrowseStories", 0.0)
    steps, _result = drive(
        app.app_servlet(make_ctx(), request), call_results=[{"rows": 1}]
    )
    call = next(s for s in steps if isinstance(s, Call))
    assert call.work_hint == pytest.approx(ms(0.45))


def test_db_servlet_uses_work_hint():
    app = RubbosApplication(default_mix(stochastic=False))
    request = Request("BrowseStories", "q0", 0.0, work_hint=ms(1.25))
    steps, result = drive(app.db_servlet(make_ctx(), request))
    assert steps[0].work == pytest.approx(ms(1.25))
    assert result == {"rows": 1}


def test_db_servlet_default_cost_without_hint():
    app = RubbosApplication(default_mix(stochastic=False))
    request = Request("X", "adhoc", 0.0)
    steps, _result = drive(app.db_servlet(make_ctx(), request))
    assert steps[0].work == pytest.approx(ms(0.5))


def test_stochastic_costs_have_configured_mean():
    app = RubbosApplication(default_mix(stochastic=True))
    ctx = make_ctx(seed=5)
    spec = app.by_name["BrowseStories"]
    draws = [app._cost(ctx, spec, ms(0.5)) for _ in range(20000)]
    assert sum(draws) / len(draws) == pytest.approx(ms(0.5), rel=0.05)


def test_handlers_cover_all_tiers():
    app = RubbosApplication(default_mix())
    handlers = app.handlers()
    assert set(handlers) == {WEB_TIER, APP_TIER, DB_TIER}
