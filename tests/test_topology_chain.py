"""Tests for arbitrary-depth chains (repro.topology.chain)."""

import pytest

from repro.servers import AsyncServer, SyncServer
from repro.topology import TierSpec, build_chain, uniform_chain
from repro.units import ms


def tiny_specs(depth=3, sync=True, **overrides):
    defaults = dict(
        threads=4, backlog=2, workers=2, lite_q_depth=64,
        pre_work=ms(0.05), mid_work=ms(0.05), post_work=ms(0.1),
        stochastic=False,
    )
    defaults.update(overrides)
    return uniform_chain(depth, sync=sync, **defaults)


# ----------------------------------------------------------------------
# spec and builder validation
# ----------------------------------------------------------------------
def test_uniform_chain_names_and_depth():
    specs = uniform_chain(4)
    assert [s.name for s in specs] == ["tier1", "tier2", "tier3", "tier4"]


def test_uniform_chain_minimum_depth():
    with pytest.raises(ValueError):
        uniform_chain(1)


def test_tier_spec_validation():
    with pytest.raises(ValueError):
        TierSpec("x", sync=True, threads=0)
    with pytest.raises(ValueError):
        TierSpec("x", sync=False, workers=0)
    with pytest.raises(ValueError):
        TierSpec("x", calls_to_next=0)


def test_tier_spec_max_sys_q_depth():
    assert TierSpec("x", sync=True, threads=100, backlog=28).max_sys_q_depth == 128
    spec = TierSpec("x", sync=False, lite_q_depth=1000, backlog=28)
    assert spec.max_sys_q_depth == 1028


def test_build_chain_rejects_duplicates():
    specs = tiny_specs(3)
    specs[2].name = specs[0].name
    with pytest.raises(ValueError):
        build_chain(specs)


def test_build_chain_server_kinds():
    specs = tiny_specs(4)
    specs[1].sync = False
    system = build_chain(specs)
    kinds = [type(server) for server in system.servers]
    assert kinds == [SyncServer, AsyncServer, SyncServer, SyncServer]


def test_chain_wiring_is_linear():
    system = build_chain(tiny_specs(4))
    for index in range(3):
        downstream = system.servers[index].downstream
        assert list(downstream) == [f"tier{index + 2}"]
    assert system.servers[3].downstream == {}


def test_chain_pool_to_next():
    specs = tiny_specs(3)
    specs[1].pool_to_next = 2
    system = build_chain(specs)
    assert system.servers[1].pools["tier3"].capacity == 2
    assert "tier2" not in system.servers[0].pools


# ----------------------------------------------------------------------
# end-to-end behaviour
# ----------------------------------------------------------------------
def test_requests_traverse_whole_chain():
    system = build_chain(tiny_specs(4), seed=5)
    system.open_loop(rate=50.0)
    system.sim.run(until=10.0)
    assert len(system.log) > 300
    assert system.log.summary(10.0)["failed"] == 0
    # every tier actually served requests
    for server in system.servers:
        assert server.stats.completed > 300


def test_multi_query_tier_fans_out():
    specs = tiny_specs(3)
    specs[1].calls_to_next = 3
    system = build_chain(specs, seed=5)
    system.open_loop(rate=20.0)
    system.sim.run(until=10.0)
    served_mid = system.servers[1].stats.completed
    served_leaf = system.servers[2].stats.completed
    assert served_leaf == pytest.approx(3 * served_mid, abs=6)


def test_deep_sync_chain_cascades_to_front():
    """Multi-hop upstream CTQO: freeze the leaf, drop at the front."""
    system = build_chain(tiny_specs(5), seed=7)
    system.open_loop(rate=200.0)
    system.sim.call_at(3.0, system.vms[-1].freeze, 2.0)
    system.sim.run(until=8.0)
    drops = system.drop_counts()
    assert drops["tier1"] > 0
    # every intermediate tier filled to its MaxSysQDepth
    if system.monitor is None:
        system.attach_monitor()


def test_deep_sync_chain_queue_fill_order():
    system = build_chain(tiny_specs(5), seed=7)
    monitor = system.attach_monitor(interval=0.05)
    system.open_loop(rate=200.0)
    system.sim.call_at(3.0, system.vms[-1].freeze, 2.0)
    system.sim.run(until=8.0)
    # every tier's thread pool saturated during the cascade (an
    # intermediate tier's inflow concurrency is capped by the upstream
    # pool, so only the front tier also fills its TCP backlog)
    for spec, name in zip(system.specs, system.names):
        assert monitor.queues[name].max() >= spec.threads, name
    front_spec, front_name = system.specs[0], system.names[0]
    assert monitor.queues[front_name].max() == front_spec.max_sys_q_depth


def test_async_chain_absorbs_leaf_freeze():
    system = build_chain(tiny_specs(5, sync=False, lite_q_depth=4096),
                         seed=7)
    system.open_loop(rate=200.0)
    system.sim.call_at(3.0, system.vms[-1].freeze, 2.0)
    system.sim.run(until=10.0)
    assert system.total_drops() == 0
    assert system.log.summary(10.0)["failed"] == 0


def test_chain_determinism():
    def run_once():
        system = build_chain(tiny_specs(4), seed=11)
        system.open_loop(rate=100.0)
        system.sim.call_at(2.0, system.vms[-1].freeze, 1.0)
        system.sim.run(until=6.0)
        return (system.drop_counts(),
                sorted(system.log.response_times()))

    assert run_once() == run_once()
