"""Tests for automated diagnosis (repro.core.diagnosis)."""

import sys

import pytest

sys.path.insert(0, "tests")
from test_core_evaluation import tiny_scenario  # noqa: E402

from repro.core import diagnose  # noqa: E402


@pytest.fixture(scope="module")
def sync_ctqo_result():
    return (
        tiny_scenario()
        .with_consolidation("app", times=[4.0, 7.0], burst_cpu=2.0,
                            burst_jobs=40, shares=200.0)
        .run()
    )


@pytest.fixture(scope="module")
def clean_result():
    return tiny_scenario().run()


def test_diagnosis_detects_ctqo(sync_ctqo_result):
    diagnosis = diagnose(sync_ctqo_result)
    assert diagnosis.has_long_tail
    assert diagnosis.is_ctqo
    assert "apache" in diagnosis.dropping_servers
    assert not diagnosis.steady_state_sufficient
    assert diagnosis.mode_clusters.get(1, 0) > 0


def test_diagnosis_recommends_replacing_the_dropping_server(sync_ctqo_result):
    diagnosis = diagnose(sync_ctqo_result)
    text = diagnosis.render()
    assert "replace apache" in text
    assert "Nginx" in text


def test_diagnosis_clean_run(clean_result):
    diagnosis = diagnose(clean_result)
    assert not diagnosis.has_long_tail
    assert not diagnosis.is_ctqo
    assert diagnosis.vlrt_count == 0
    assert "No long tail" in diagnosis.render()


def test_diagnosis_steady_state_prediction_is_small(clean_result):
    diagnosis = diagnose(clean_result)
    assert diagnosis.predicted_response_ms < 50.0


def test_diagnosis_async_absorbs(sync_ctqo_result):
    result = (
        tiny_scenario(nx=3)
        .with_consolidation("app", times=[4.0, 7.0], burst_cpu=2.0,
                            burst_jobs=40, shares=200.0)
        .run()
    )
    diagnosis = diagnose(result)
    assert not diagnosis.is_ctqo
    assert result.dropped_packets == 0
    assert "absorbed" in diagnosis.render()
