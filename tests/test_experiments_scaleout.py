"""Tests for the scale-out experiment (repro.experiments.scaleout)."""

import pytest

from repro.experiments import scaleout


def test_stall_times_are_rto_spaced_triples():
    times = scaleout.stall_times(40.0, 5.0)
    assert times and len(times) % 3 == 0
    for i in range(0, len(times), 3):
        a, b, c = times[i:i + 3]
        # spacing == the TCP RTO, so a packet dropped in burst k
        # retransmits straight into burst k+1 (the 6/9 s modes)
        assert b - a == pytest.approx(scaleout.BURST_SPACING)
        assert c - b == pytest.approx(scaleout.BURST_SPACING)
    assert times[0] > 5.0                              # clear of warmup
    assert times[-1] + scaleout.BURST_CPU < 40.0       # ends inside run


def test_bursts_stay_millibottlenecks():
    # the detectors cap episodes at 2.5 s; a longer burst would be
    # filtered out and per-replica attribution coverage would collapse
    assert scaleout.BURST_CPU < 2.5


def test_run_rejects_unknown_variant():
    with pytest.raises(ValueError, match="unknown variant"):
        scaleout.run(variants=["nope"])


def test_outcomes_report_unrun_variants_as_unknown():
    outcomes = scaleout.scaleout_outcomes({})
    assert all(ev["holds"] is None for ev in outcomes.values())
    assert scaleout.attribution_coverage({}) == 1.0


@pytest.mark.integration
@pytest.mark.slow
def test_round_robin_reproduces_modes_with_per_replica_attribution():
    """Claim (a): blind rotation keeps feeding the stalled replica —
    the 3/6/9 s modes reappear on <= ~1/N of requests, and every drop
    resolves to the stalled *replica's* own queue overflow."""
    cell = scaleout.run_one("rpc_round_robin", clients=7000, duration=25.0)
    assert cell["modes"].get(1, 0) > 0
    assert cell["modes"].get(2, 0) > 0
    drops = cell["drops_by_replica"]
    assert sum(drops.values()) > 0
    share = drops.get(cell["stalled_replica"], 0) / sum(drops.values())
    assert share >= 0.9
    assert cell["summary"]["vlrt_fraction"] <= 1.0 / scaleout.REPLICAS
    assert cell["attribution"]["coverage"] >= 0.9


@pytest.mark.integration
@pytest.mark.slow
def test_async_stack_absorbs_the_same_stall():
    """Claim (d): the fully asynchronous stack needs no routing
    cleverness — same stall, no drops, no VLRT."""
    cell = scaleout.run_one("async_round_robin", clients=7000,
                            duration=25.0)
    assert cell["summary"]["vlrt"] == 0
    assert cell["summary"]["dropped_packets"] == 0
