"""Unit tests for the in-process LRU cache tier (repro.servers.cache).

The boundary semantics pinned here are the ones the cache_storage
experiment's claims lean on: expiry *exactly at* the TTL is a miss
(never serve a value at its declared staleness bound), capacity-1
eviction keeps strict recency order, bulk invalidation resets the
working set but not the counters, and single-flight leadership always
settles its followers.
"""

import pytest

from repro.servers.cache import CacheStats, LruCache
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=11)


# ----------------------------------------------------------------------
# construction and validation
# ----------------------------------------------------------------------
def test_capacity_below_one_rejected(sim):
    with pytest.raises(ValueError, match="capacity must be >= 1"):
        LruCache(sim, 0)


def test_nonpositive_default_ttl_rejected(sim):
    with pytest.raises(ValueError, match="default_ttl must be positive"):
        LruCache(sim, 4, default_ttl=0.0)


def test_nonpositive_put_ttl_rejected(sim):
    cache = LruCache(sim, 4)
    with pytest.raises(ValueError, match="ttl must be positive"):
        cache.put("k", 1, ttl=-1.0)


# ----------------------------------------------------------------------
# TTL boundaries
# ----------------------------------------------------------------------
def test_entry_is_live_strictly_before_its_ttl(sim):
    cache = LruCache(sim, 4)
    cache.put("k", "v", ttl=2.0)
    sim.run(until=1.999)
    assert cache.get("k") == (True, "v")
    assert cache.stats.expirations == 0


def test_expiry_exactly_at_the_ttl_boundary_is_a_miss(sim):
    """now >= expires_at: rereading at exactly t+ttl must miss — the
    conservative convention (never serve at the staleness bound)."""
    cache = LruCache(sim, 4)
    cache.put("k", "v", ttl=2.0)
    sim.run(until=2.0)
    assert cache.get("k") == (False, None)
    assert cache.stats.expirations == 1
    assert cache.stats.misses == 1
    assert "k" not in cache
    assert len(cache) == 0              # the expired entry was removed


def test_put_refreshes_the_ttl(sim):
    cache = LruCache(sim, 4, default_ttl=2.0)
    cache.put("k", "v1")
    sim.run(until=1.5)
    cache.put("k", "v2")                # new ttl window from t=1.5
    sim.run(until=3.0)
    assert cache.get("k") == (True, "v2")
    sim.run(until=3.5)
    assert cache.get("k") == (False, None)


def test_no_ttl_means_never_expires(sim):
    cache = LruCache(sim, 4)
    cache.put("k", "v")
    sim.run(until=1e6)
    assert cache.get("k") == (True, "v")


# ----------------------------------------------------------------------
# LRU eviction
# ----------------------------------------------------------------------
def test_eviction_order_under_capacity_one(sim):
    cache = LruCache(sim, 1)
    cache.put("a", 1)
    cache.put("b", 2)                   # evicts a
    assert cache.stats.evictions == 1
    assert cache.get("a") == (False, None)
    assert cache.get("b") == (True, 2)
    cache.put("c", 3)                   # evicts b
    assert cache.stats.evictions == 2
    assert cache.get("b") == (False, None)
    assert cache.get("c") == (True, 3)
    assert len(cache) == 1


def test_refreshing_put_does_not_evict_at_capacity_one(sim):
    cache = LruCache(sim, 1)
    cache.put("a", 1)
    cache.put("a", 2)                   # same key: refresh, not insert
    assert cache.stats.evictions == 0
    assert cache.get("a") == (True, 2)


def test_a_hit_refreshes_recency(sim):
    cache = LruCache(sim, 2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")                      # a becomes most-recent
    cache.put("c", 3)                   # evicts b, the LRU entry
    assert "a" in cache
    assert "b" not in cache
    assert "c" in cache


# ----------------------------------------------------------------------
# hit-ratio counters and invalidation
# ----------------------------------------------------------------------
def test_untouched_cache_reports_hit_ratio_one():
    assert CacheStats().hit_ratio() == 1.0
    assert CacheStats().hit_ratio("browse") == 1.0


def test_per_route_hit_ratios_are_independent(sim):
    cache = LruCache(sim, 8)
    cache.put("k", "v")
    cache.get("k", route="browse")          # hit
    cache.get("k", route="browse")          # hit
    cache.get("missing", route="browse")    # miss
    cache.get("missing", route="checkout")  # miss
    stats = cache.stats
    assert stats.hit_ratio("browse") == pytest.approx(2 / 3)
    assert stats.hit_ratio("checkout") == 0.0
    assert stats.hit_ratio() == pytest.approx(2 / 4)
    assert stats.lookups == 4


def test_hit_ratio_counters_after_invalidation(sim):
    """invalidate_all drops the entries, not the history: the ratio
    keeps falling as the post-invalidation misses accumulate."""
    cache = LruCache(sim, 8)
    for key in range(4):
        cache.put(key, key)
        assert cache.get(key) == (True, key)
    assert cache.stats.hit_ratio() == 1.0
    dropped = cache.invalidate_all()
    assert dropped == 4
    assert cache.stats.invalidations == 4
    assert len(cache) == 0
    for key in range(4):
        assert cache.get(key) == (False, None)
    assert cache.stats.hits == 4
    assert cache.stats.misses == 4
    assert cache.stats.hit_ratio() == 0.5


def test_single_key_invalidation(sim):
    cache = LruCache(sim, 8)
    cache.put("k", "v")
    assert cache.invalidate("k") is True
    assert cache.invalidate("k") is False
    assert cache.stats.invalidations == 1
    assert cache.get("k") == (False, None)


def test_stats_snapshot_shape(sim):
    cache = LruCache(sim, 8)
    cache.put("k", "v")
    cache.get("k")
    snapshot = cache.stats.snapshot()
    assert snapshot == {"hits": 1, "misses": 0, "evictions": 0,
                        "expirations": 0, "invalidations": 0,
                        "coalesced": 0, "hit_ratio": 1.0}


# ----------------------------------------------------------------------
# single-flight miss coalescing
# ----------------------------------------------------------------------
def test_first_miss_leads_and_put_settles_followers(sim):
    cache = LruCache(sim, 8)
    assert cache.lead_or_follow("k") is None      # leader
    event = cache.lead_or_follow("k")             # follower parks
    assert event is not None
    assert not event.triggered
    assert cache.stats.coalesced == 1
    assert cache.inflight_keys() == 1
    cache.put("k", "v")
    assert event.triggered
    assert event.value == (True, "v")
    assert cache.inflight_keys() == 0


def test_abort_settles_followers_with_a_miss(sim):
    cache = LruCache(sim, 8)
    assert cache.lead_or_follow("k") is None
    event = cache.lead_or_follow("k")
    cache.abort("k")
    assert event.triggered
    assert event.value == (False, None)
    assert cache.inflight_keys() == 0
    # leadership is reclaimable after the abort
    assert cache.lead_or_follow("k") is None


def test_single_flight_is_per_key(sim):
    cache = LruCache(sim, 8)
    assert cache.lead_or_follow("a") is None
    assert cache.lead_or_follow("b") is None      # different key: leads
    assert cache.stats.coalesced == 0
    assert cache.inflight_keys() == 2
    cache.abort("a")
    cache.abort("b")


def test_invalidate_all_leaves_inflight_fetches_alone(sim):
    cache = LruCache(sim, 8)
    assert cache.lead_or_follow("k") is None
    follower = cache.lead_or_follow("k")
    cache.invalidate_all()
    assert cache.inflight_keys() == 1             # the herd still parks
    cache.put("k", "fresh")
    assert follower.value == (True, "fresh")
    assert cache.get("k") == (True, "fresh")
