"""System-level property tests: invariants that must hold for every
workload/millibottleneck combination on small systems.

These encode the paper's structural claims as properties:

1. a synchronous server's queue depth never exceeds MaxSysQDepth;
2. packets drop **iff** the queue was at its bound;
3. an asynchronous tier with unconstrained LiteQDepth never drops,
   whatever the stall pattern;
4. requests are conserved — every issued request is eventually recorded
   exactly once (completed or failed), given time to drain;
5. identical seeds give identical systems, whatever the parameters.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Scenario
from repro.topology import SystemConfig

from conftest import tiny_mix


def make_scenario(nx, seed, burst_time, burst_cpu, shares, clients):
    config = SystemConfig(
        nx=nx, seed=seed,
        web_threads=6, app_threads=6, db_threads=4,
        web_backlog=3, app_backlog=3, db_backlog=3,
        db_pool_size=4, web_spawn_extra_process=False,
        lite_q_depth=4096, xtomcat_workers=6,
        xmysql_slots=2, xmysql_queue=4096,
        interaction_specs=tiny_mix(stochastic=True),
    )
    return (
        Scenario(config, clients=clients, think_mean=1.0,
                 duration=14.0, warmup=1.0)
        .with_consolidation("app", times=[burst_time],
                            burst_cpu=burst_cpu, burst_jobs=20,
                            shares=shares)
    )


burst_params = st.tuples(
    st.floats(min_value=3.0, max_value=8.0),     # burst_time
    st.floats(min_value=0.2, max_value=2.5),     # burst_cpu
    st.floats(min_value=1.0, max_value=300.0),   # shares
    st.integers(min_value=20, max_value=90),     # clients
    st.integers(min_value=0, max_value=10_000),  # seed
)


@given(burst_params)
@settings(max_examples=12, deadline=None)
def test_sync_queue_bound_and_drop_equivalence(params):
    burst_time, burst_cpu, shares, clients, seed = params
    result = make_scenario(0, seed, burst_time, burst_cpu, shares,
                           clients).run()
    for tier in ("web", "app", "db"):
        server = result.system.servers[tier]
        name = result.names[tier]
        depth_series = result.monitor.queues[name]
        peak = max(int(depth_series.max()), server.stats.peak_queue_depth)
        # invariant 1: the bound is a hard ceiling
        assert peak <= server.max_sys_q_depth, (tier, params)
        # invariant 2: drops imply the bound was reached
        if server.listener.drops > 0:
            assert server.stats.peak_queue_depth == server.max_sys_q_depth, (
                tier, params,
            )


@given(burst_params)
@settings(max_examples=10, deadline=None)
def test_async_stack_never_drops_within_lite_q(params):
    burst_time, burst_cpu, shares, clients, seed = params
    result = make_scenario(3, seed, burst_time, burst_cpu, shares,
                           clients).run()
    # invariant 3: with LiteQDepth >> population, no drops ever
    assert result.dropped_packets == 0, params
    # queues stay within the (huge) lightweight bound
    for tier in ("web", "app", "db"):
        server = result.system.servers[tier]
        assert server.stats.peak_queue_depth <= server.lite_q_depth


@given(burst_params)
@settings(max_examples=8, deadline=None)
def test_request_conservation(params):
    """Closed loop: at any instant, clients are thinking, waiting, or
    recorded — after the run, issued - recorded equals in-flight, which
    is bounded by the population."""
    burst_time, burst_cpu, shares, clients, seed = params
    scenario = make_scenario(0, seed, burst_time, burst_cpu, shares,
                             clients)
    scenario.warmup = 0.0
    result = scenario.run()
    issued = result.system.log  # unfiltered log (warmup=0)
    # records never exceed what the population could have produced
    assert len(issued) <= clients * 20
    # every record is terminal: completed xor failed bookkeeping holds
    for record in issued.records:
        assert record.end >= record.start
        if record.failed:
            assert record.error


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=6, deadline=None)
def test_seed_determinism_across_parameters(seed):
    def run_once():
        result = make_scenario(0, seed, 4.0, 1.5, 50.0, 60).run()
        return (
            result.drops,
            len(result.log),
            sorted(result.log.response_times())[:50],
        )

    assert run_once() == run_once()
