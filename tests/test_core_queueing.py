"""Unit tests for the analytic model (repro.core.queueing), including
the calibration check against the simulator."""

import pytest

from repro.apps.rubbos import RubbosApplication, default_mix
from repro.core.queueing import SteadyStateModel, TierDemand, ps_response_time


@pytest.fixture
def model():
    return SteadyStateModel(RubbosApplication(default_mix()), think_mean=7.0)


# ----------------------------------------------------------------------
# PS formula
# ----------------------------------------------------------------------
def test_ps_response_time_basics():
    assert ps_response_time(0.001, 0.0) == pytest.approx(0.001)
    assert ps_response_time(0.001, 0.5) == pytest.approx(0.002)
    assert ps_response_time(0.001, 0.9) == pytest.approx(0.010)


def test_ps_response_time_saturated_is_infinite():
    assert ps_response_time(0.001, 1.0) == float("inf")


def test_ps_response_time_validation():
    with pytest.raises(ValueError):
        ps_response_time(-0.001, 0.5)


# ----------------------------------------------------------------------
# tier demands
# ----------------------------------------------------------------------
def test_tier_utilization(model):
    app_tier = next(t for t in model.tiers if t.name == "app")
    assert app_tier.utilization(1000) == pytest.approx(0.77, abs=0.01)


def test_multicore_tier_divides_utilization():
    tier = TierDemand("app", demand=0.001, cores=4)
    assert tier.utilization(1000) == pytest.approx(0.25)


def test_capacity_is_bottleneck_rate(model):
    # app tier: 0.77 ms/request on one core -> ~1300 req/s
    assert model.capacity() == pytest.approx(1300, rel=0.01)


# ----------------------------------------------------------------------
# closed-network solution
# ----------------------------------------------------------------------
def test_solve_matches_paper_operating_points(model):
    expectations = {4000: (572, 0.44), 7000: (990, 0.77), 8000: (1103, 0.88)}
    for clients, (paper_tput, app_util) in expectations.items():
        solution = model.solve(clients)
        assert solution["throughput_rps"] == pytest.approx(paper_tput, rel=0.05)
        assert solution["utilization"]["app"] == pytest.approx(app_util, abs=0.03)
        assert solution["bottleneck"] == "app"


def test_solve_saturates_gracefully(model):
    solution = model.solve(100_000)
    assert solution["throughput_rps"] <= model.capacity()
    assert solution["throughput_rps"] == pytest.approx(model.capacity(),
                                                       rel=0.01)


def test_steady_state_cannot_explain_seconds(model):
    """The §III argument: at every paper workload, queueing theory
    predicts millisecond responses — so 3-second responses need another
    mechanism (CTQO)."""
    for clients in (4000, 7000, 8000):
        assert not model.explains_seconds_of_latency(clients)
        assert model.solve(clients)["response_time_s"] < 0.05


def test_app_cores_shifts_bottleneck():
    model = SteadyStateModel(RubbosApplication(default_mix()),
                             think_mean=7.0, app_cores=4)
    solution = model.solve(8000)
    assert solution["bottleneck"] == "db"  # the Fig 5 configuration


def test_solve_validation(model):
    with pytest.raises(ValueError):
        model.solve(0)
    with pytest.raises(ValueError):
        SteadyStateModel(RubbosApplication(default_mix()), think_mean=0)


# ----------------------------------------------------------------------
# calibration: analytics vs simulator, no millibottlenecks
# ----------------------------------------------------------------------
def test_simulator_agrees_with_analytics_when_clean(model):
    from repro.core import Scenario
    from repro.topology import SystemConfig

    result = Scenario(SystemConfig(nx=0), clients=4000,
                      duration=25.0, warmup=5.0).run()
    predicted = model.solve(4000)
    measured = result.summary()
    assert measured["throughput_rps"] == pytest.approx(
        predicted["throughput_rps"], rel=0.05
    )
    assert result.cpu_mean()["tomcat"] == pytest.approx(
        predicted["utilization"]["app"], abs=0.05
    )
    # and no long tail whatsoever without millibottlenecks
    assert measured["vlrt"] == 0
    assert measured["dropped_packets"] == 0
