"""Tests for the parallel experiment-execution engine
(repro.experiments.runner): registry integrity, job expansion, the
parallel-vs-serial determinism contract, and the worker crash/timeout
recovery paths."""

import pytest

from repro.experiments import record
from repro.experiments.report import run_report_table
from repro.experiments.runner import (
    REGISTRY,
    JobConfig,
    canonical,
    derive_seed,
    execute_job,
    expand_jobs,
    job_id,
    run_jobs,
)

SELFTEST = "repro.experiments._selftest:run_experiment"

#: two representative experiments (one timeline figure, one analytic
#: validation) at test scale — small enough for the fast loop, real
#: enough to exercise full simulator runs in the workers
EQUIVALENCE_JOBS = [
    JobConfig(name="fig03", seed=42, duration=12.0,
              params={"clients": 3000}),
    JobConfig(name="validation", seed=7, duration=10.0,
              params={"workloads": [2000]}),
]


# ----------------------------------------------------------------------
# registry and job expansion
# ----------------------------------------------------------------------
def test_registry_covers_every_experiment_module():
    expected = {"fig01", "fig02", "fig03", "fig05", "fig07", "fig08",
                "fig09", "fig10", "fig11", "fig12", "headline",
                "deep_chain", "replication", "validation", "cause_variety",
                "nx_sweep", "policy_matrix", "scaleout", "fanout",
                "cache_storage"}
    assert set(REGISTRY) == expected


def test_registry_entries_resolve_to_callables():
    from repro.experiments.runner import _resolve_entry

    for spec in REGISTRY.values():
        assert callable(_resolve_entry(spec.entry)), spec.name


def test_expand_jobs_variants_and_seeds():
    jobs = expand_jobs(names=["fig07", "nx_sweep"], seeds=2, base_seed=42)
    # fig07 has 2 variants, nx_sweep has 4; each gets 2 seeds
    assert len(jobs) == (2 + 4) * 2
    ids = [job_id(j) for j in jobs]
    assert len(set(ids)) == len(ids)
    # seed index 0 keeps the base seed; index 1 derives a new stream
    by_name = [j for j in jobs if j.name == "fig07" and not j.params]
    assert by_name[0].seed == 42
    assert by_name[1].seed == derive_seed(42, "fig07/[]", 1)


def test_expand_jobs_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown experiment"):
        expand_jobs(names=["fig99"])


def test_derive_seed_is_stable_and_label_sensitive():
    assert derive_seed(42, "a", 0) == derive_seed(42, "a", 0)
    assert derive_seed(42, "a", 0) != derive_seed(42, "a", 1)
    assert derive_seed(42, "a", 0) != derive_seed(42, "b", 0)
    assert derive_seed(42, "a", 0) != derive_seed(43, "a", 0)


def test_canonical_normalizes_keys_tuples_and_numpy():
    import numpy as np

    record_in = {
        4000: (1, 2.5),
        "n": np.int64(3),
        "x": np.float64(0.5),
        "nested": {True: None},
    }
    out = canonical(record_in)
    assert out == {"4000": [1, 2.5], "n": 3, "x": 0.5,
                   "nested": {"True": None}}
    assert type(out["n"]) is int
    assert type(out["x"]) is float


def test_job_id_sorts_params():
    job = JobConfig(name="x", seed=5, params={"b": 2, "a": 1})
    assert job_id(job) == "x[a=1,b=2]@s5"


# ----------------------------------------------------------------------
# the determinism contract: parallel == serial, byte for byte
# ----------------------------------------------------------------------
def test_parallel_records_byte_identical_to_serial():
    serial = run_jobs(EQUIVALENCE_JOBS, workers=1)
    parallel = run_jobs(EQUIVALENCE_JOBS, workers=4)
    assert serial.ok and parallel.ok
    assert serial.records == parallel.records
    assert (record.records_to_json(serial.records)
            == record.records_to_json(parallel.records))


def test_records_sorted_regardless_of_completion_order():
    report = run_jobs(list(reversed(EQUIVALENCE_JOBS)), workers=2)
    assert list(report.records) == sorted(report.records)


# ----------------------------------------------------------------------
# failure paths: crash retry, exhaustion, timeout
# ----------------------------------------------------------------------
def test_worker_crash_is_retried_and_recovers():
    flaky = JobConfig(name="selftest", entry=SELFTEST,
                      params={"mode": "flaky-crash"})
    report = run_jobs([flaky], workers=2, retries=2)
    assert report.ok
    jid = job_id(flaky)
    assert report.attempts[jid] == 2
    assert report.records[jid]["payload"]["recovered_on_attempt"] == 1


def test_persistent_crash_exhausts_retries():
    crash = JobConfig(name="selftest", entry=SELFTEST,
                      params={"mode": "crash"})
    report = run_jobs([crash], workers=2, retries=1)
    assert not report.ok
    jid = job_id(crash)
    assert report.attempts[jid] == 2
    assert "crashed" in report.failures[jid]


def test_worker_exception_is_reported():
    bad = JobConfig(name="selftest", entry=SELFTEST,
                    params={"mode": "fail"})
    report = run_jobs([bad], workers=2, retries=0)
    assert not report.ok
    assert "deliberate failure" in report.failures[job_id(bad)]


def test_serial_mode_reports_failures_too():
    bad = JobConfig(name="selftest", entry=SELFTEST,
                    params={"mode": "fail"})
    report = run_jobs([bad], workers=1, retries=1)
    assert not report.ok
    assert report.attempts[job_id(bad)] == 2


def test_hanging_worker_is_timed_out():
    hang = JobConfig(name="selftest", entry=SELFTEST,
                     params={"mode": "hang"})
    report = run_jobs([hang], workers=2, timeout=0.5, retries=0)
    assert not report.ok
    assert "timed out" in report.failures[job_id(hang)]


def test_healthy_jobs_survive_a_crashing_neighbour():
    jobs = [
        JobConfig(name="selftest", entry=SELFTEST, params={"mode": "ok"}),
        JobConfig(name="selftest", seed=43, entry=SELFTEST,
                  params={"mode": "crash"}),
    ]
    report = run_jobs(jobs, workers=2, retries=0)
    assert len(report.records) == 1
    assert len(report.failures) == 1


def test_unknown_experiment_fails_cleanly():
    report = run_jobs([JobConfig(name="fig99")], workers=1, retries=0)
    assert "unknown experiment" in report.failures["fig99@s42"]


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def test_run_report_table_lists_every_job():
    ok = JobConfig(name="selftest", entry=SELFTEST, params={"mode": "ok"})
    bad = JobConfig(name="selftest", seed=43, entry=SELFTEST,
                    params={"mode": "fail"})
    report = run_jobs([ok, bad], workers=1, retries=0)
    table = run_report_table(report)
    assert job_id(ok) in table
    assert job_id(bad) in table
    assert "FAILED" in table
    assert "1 ok, 1 failed" in table


def test_execute_job_embeds_job_metadata():
    job = JobConfig(name="selftest", seed=9, entry=SELFTEST,
                    params={"mode": "ok"})
    rec = execute_job(job)
    assert rec["experiment"] == "selftest"
    assert rec["seed"] == 9
    assert rec["job"] == job_id(job)
    assert rec["payload"] == {"value": 9}
