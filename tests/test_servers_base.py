"""Unit tests for shared server machinery (repro.servers.base)."""

import pytest

from repro.apps.servlet import Call, Compute, Request
from repro.cpu import Host
from repro.net import NetworkFabric
from repro.servers import ServerStats, SyncServer
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=13)


@pytest.fixture
def fabric(sim):
    return NetworkFabric(sim, latency=0.0)


def make_vm(sim, name="vm"):
    return Host(sim, cores=1, name=f"{name}-host").add_vm(name)


def noop_handler(ctx, request):
    yield Compute(0.001)
    return "done"


def send_one(sim, fabric, listener, operation="op"):
    results = []

    def client():
        exchange = fabric.send(listener, Request("K", operation, sim.now))
        results.append((yield exchange.response))

    sim.process(client())
    return results


# ----------------------------------------------------------------------
def test_stats_snapshot_keys():
    stats = ServerStats()
    snapshot = stats.snapshot()
    assert set(snapshot) == {
        "arrivals", "completed", "failed", "downstream_calls",
        "downstream_failures", "peak_queue_depth",
        "shed", "retries", "breaker_fast_fails",
    }
    assert all(v == 0 for v in snapshot.values())


def test_connect_returns_self_for_chaining(sim, fabric):
    a = SyncServer(sim, fabric, "a", make_vm(sim, "a"), noop_handler,
                   threads=1)
    b = SyncServer(sim, fabric, "b", make_vm(sim, "b"), noop_handler,
                   threads=1)
    assert a.connect("b", b.listener) is a


def test_each_server_gets_deterministic_private_rng(sim, fabric):
    a = SyncServer(sim, fabric, "a", make_vm(sim, "a"), noop_handler,
                   threads=1)
    a2_sim = Simulator(seed=13)
    a2 = SyncServer(a2_sim, NetworkFabric(a2_sim), "a",
                    make_vm(a2_sim, "a"), noop_handler, threads=1)
    draws = [a.ctx.rng.random() for _ in range(5)]
    draws2 = [a2.ctx.rng.random() for _ in range(5)]
    assert draws == draws2  # same seed + same name -> same stream


def test_peak_queue_depth_tracked(sim, fabric):
    server = SyncServer(sim, fabric, "srv", make_vm(sim), noop_handler,
                        threads=1, backlog=8)

    def slow_handler(ctx, request):
        yield Compute(0.5)
        return "ok"

    server.handler = slow_handler
    for i in range(4):
        send_one(sim, fabric, server.listener, f"r{i}")
    sim.run(until=0.1)
    server._note_queue_depth()
    assert server.stats.peak_queue_depth == 4


def test_bad_servlet_yield_type_kills_the_worker(sim, fabric):
    """A servlet yielding garbage is a programming error: the worker
    process fails with TypeError and the request never gets a reply
    (it is not converted into a client-visible error response)."""

    def bad_handler(ctx, request):
        yield "not a step"

    server = SyncServer(sim, fabric, "srv", make_vm(sim), bad_handler,
                        threads=1)
    results = send_one(sim, fabric, server.listener)
    sim.run(until=1.0)
    assert results == []                 # no reply ever arrived
    assert server.stats.completed == 0
    assert server.busy_threads == 0      # worker died, slot not restored


def test_unrouted_call_fails_request_not_server(sim, fabric):
    def handler(ctx, request):
        result = yield Call("ghost", "op")
        return result

    server = SyncServer(sim, fabric, "srv", make_vm(sim), handler, threads=2)
    results = send_one(sim, fabric, server.listener)
    sim.run()
    assert results and not results[0].ok
    assert "no route" in results[0].error
    # the worker thread survived and serves the next request
    server.handler = noop_handler
    results2 = send_one(sim, fabric, server.listener)
    sim.run()
    assert results2 and results2[0].ok


def test_downstream_calls_counted(sim, fabric):
    db = SyncServer(sim, fabric, "db", make_vm(sim, "db"), noop_handler,
                    threads=4)

    def handler(ctx, request):
        first = yield Call("db", "q1")
        second = yield Call("db", "q2")
        return (first, second)

    app = SyncServer(sim, fabric, "app", make_vm(sim, "app"), handler,
                     threads=2)
    app.connect("db", db.listener)
    send_one(sim, fabric, app.listener)
    sim.run()
    assert app.stats.downstream_calls == 2
    assert app.stats.downstream_failures == 0
    assert db.stats.completed == 2


def test_servlet_error_propagates_through_two_hops(sim, fabric):
    def leaf_handler(ctx, request):
        from repro.apps.servlet import ServletError

        raise ServletError("db on fire")
        yield  # pragma: no cover

    def mid_handler(ctx, request):
        result = yield Call("db", "q")
        return result

    db = SyncServer(sim, fabric, "db", make_vm(sim, "db"), leaf_handler,
                    threads=1)
    app = SyncServer(sim, fabric, "app", make_vm(sim, "app"), mid_handler,
                     threads=1)
    app.connect("db", db.listener)
    results = send_one(sim, fabric, app.listener)
    sim.run()
    assert results and not results[0].ok
    assert "db on fire" in results[0].error
    assert db.stats.failed == 1
    assert app.stats.failed == 1
    assert app.stats.downstream_failures == 1


def test_request_trace_records_hops(sim, fabric):
    db = SyncServer(sim, fabric, "db", make_vm(sim, "db"), noop_handler,
                    threads=1)

    def handler(ctx, request):
        result = yield Call("db", "q")
        return result

    app = SyncServer(sim, fabric, "app", make_vm(sim, "app"), handler,
                     threads=1)
    app.connect("db", db.listener)
    request = Request("K", "op", sim.now)
    outcomes = []

    def client():
        exchange = fabric.send(app.listener, request)
        outcomes.append((yield exchange.response))

    sim.process(client())
    sim.run()
    events = [(event, detail) for _t, event, detail in request.trace]
    assert ("start", "app") in events
    assert ("call", "app->db") in events
    assert ("start", "db") in events
    assert ("reply", "db") in events
    assert ("reply", "app") in events


# ----------------------------------------------------------------------
# replica routing
# ----------------------------------------------------------------------
def test_round_robin_alternates_replicas(sim, fabric):
    replica_a = SyncServer(sim, fabric, "ra", make_vm(sim, "ra"),
                           noop_handler, threads=4)
    replica_b = SyncServer(sim, fabric, "rb", make_vm(sim, "rb"),
                           noop_handler, threads=4)

    def handler(ctx, request):
        result = yield Call("app", "op")
        return result

    front = SyncServer(sim, fabric, "front", make_vm(sim, "front"),
                       handler, threads=8)
    front.connect("app", [replica_a.listener, replica_b.listener])
    for i in range(10):
        send_one(sim, fabric, front.listener, f"r{i}")
    sim.run()
    assert replica_a.stats.completed == 5
    assert replica_b.stats.completed == 5


def test_empty_replica_list_rejected(sim, fabric):
    server = SyncServer(sim, fabric, "s", make_vm(sim), noop_handler,
                        threads=1)
    with pytest.raises(ValueError):
        server.connect("app", [])


def test_single_listener_still_works_via_connect(sim, fabric):
    leaf = SyncServer(sim, fabric, "leaf", make_vm(sim, "leaf"),
                      noop_handler, threads=2)

    def handler(ctx, request):
        result = yield Call("leaf", "op")
        return result

    front = SyncServer(sim, fabric, "front", make_vm(sim, "front"),
                       handler, threads=2)
    front.connect("leaf", leaf.listener)
    results = send_one(sim, fabric, front.listener)
    sim.run()
    assert results and results[0].ok
