"""Golden-output tests for the record serialization/rendering pipeline.

A runner record serialized with ``records_to_json``, reloaded with
``records_from_json`` and re-rendered with ``render_records`` must match
the checked-in golden text exactly — this pins the on-disk format the
`repro run-all` determinism guarantee is stated in.
"""

from repro.experiments.record import (
    records_from_json,
    records_to_json,
    render_records,
)
from repro.experiments.runner import canonical

#: a synthetic but shape-faithful records mapping (one timeline figure,
#: one sweep) — handcrafted so the golden text never depends on the
#: simulator itself
RECORDS = canonical({
    "fig99@s42": {
        "experiment": "fig99",
        "job": "fig99@s42",
        "seed": 42,
        "duration": 18.0,
        "params": {},
        "payload": {
            "figure": "Fig 99",
            "summary": {
                "requests": 1234,
                "throughput_rps": 987.6543219,
                "vlrt": 17,
                "drops_by_server": {"apache": 122, "tomcat": 0},
            },
            "queue_max": {"apache": 278, "tomcat": 293},
            "claim_failures": [],
        },
    },
    "sweep[nx=2]@s7": {
        "experiment": "sweep",
        "job": "sweep[nx=2]@s7",
        "seed": 7,
        "duration": None,
        "params": {"nx": 2},
        "payload": {
            "nx": 2,
            "highest_avg_cpu": 0.8304,
            "levels": [100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600],
        },
    },
})

GOLDEN_RENDER = """\
# run-all records

## fig99@s42

| metric | value |
|---|---|
| claim_failures | [] |
| figure | Fig 99 |
| queue_max.apache | 278 |
| queue_max.tomcat | 293 |
| summary.drops_by_server.apache | 122 |
| summary.drops_by_server.tomcat | 0 |
| summary.requests | 1234 |
| summary.throughput_rps | 987.654 |
| summary.vlrt | 17 |

## sweep[nx=2]@s7

| metric | value |
|---|---|
| highest_avg_cpu | 0.8304 |
| levels | [9 items] |
| nx | 2 |
"""


def test_json_round_trip_is_lossless():
    text = records_to_json(RECORDS)
    assert records_from_json(text) == RECORDS
    # serializing the reloaded mapping reproduces the bytes exactly
    assert records_to_json(records_from_json(text)) == text


def test_json_is_canonical():
    text = records_to_json(RECORDS)
    assert text.endswith("\n")
    # key order in the source dict must not matter
    shuffled = dict(reversed(list(RECORDS.items())))
    assert records_to_json(shuffled) == text


def test_render_matches_golden():
    assert render_records(RECORDS) == GOLDEN_RENDER


def test_render_after_round_trip_matches_golden():
    reloaded = records_from_json(records_to_json(RECORDS))
    assert render_records(reloaded) == GOLDEN_RENDER


def test_write_and_load_records(tmp_path):
    from repro.experiments.record import load_records, write_records

    path = tmp_path / "records.json"
    write_records(path, RECORDS)
    assert load_records(path) == RECORDS


def test_render_of_real_record_is_stable():
    """End to end: a real (tiny) run renders identically twice."""
    from repro.experiments.runner import JobConfig, execute_job

    job = JobConfig(name="validation", seed=3, duration=10.0,
                    params={"workloads": [2000]})
    first = render_records({"validation@s3": execute_job(job)})
    second = render_records({"validation@s3": execute_job(job)})
    assert first == second
    assert "| metric | value |" in first
