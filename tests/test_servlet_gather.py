"""Unit tests for the Gather servlet instruction (repro.apps.servlet)."""

import pytest

from repro.apps.servlet import Call, Gather


def legs(n):
    return [Call(f"leaf{i + 1}", f"op{i + 1}") for i in range(n)]


def test_all_of_defaults_to_every_leg():
    gather = Gather(legs(3))
    assert gather.quorum is None
    assert len(gather.calls) == 3


def test_empty_gather_rejected():
    with pytest.raises(ValueError, match="at least one Call"):
        Gather([])


def test_non_call_leg_rejected():
    with pytest.raises(TypeError, match="legs must be Calls"):
        Gather([Call("leaf1", "op"), "leaf2"])


def test_quorum_above_leg_count_rejected():
    with pytest.raises(ValueError, match="quorum 4 exceeds leg count 3"):
        Gather(legs(3), quorum=4)


def test_quorum_below_one_rejected():
    with pytest.raises(ValueError, match="quorum must be >= 1"):
        Gather(legs(3), quorum=0)


def test_quorum_equal_to_leg_count_allowed():
    assert Gather(legs(3), quorum=3).quorum == 3
