"""Equivalence suite: the online detector vs the offline detector.

The contract pinned here (and relied on by the live heartbeat): feeding
a gauge series one sample at a time through
:class:`~repro.metrics.online.OnlineSaturationTracker` and calling
``finish()`` yields the *same* episode list — spans, peaks, merging,
filters — as :func:`~repro.metrics.detector.saturation_episodes` over
the finished series.  Real-run equivalence covers the assembled
:class:`~repro.metrics.online.OnlineEpisodeDetector` against
``detect_millibottlenecks`` / ``overflow_episodes`` on the same
monitor, across the scenario shapes the quick registry exercises
(plain, consolidation, bursty; nx = 0 and 1).

The satellite edge cases — episode still open at end-of-run, a
zero-length gauge series, a single saturated sample — are asserted for
*both* detectors side by side.
"""

import random

import pytest

from repro.core import Scenario
from repro.metrics import TimeSeries
from repro.metrics.detector import (
    detect_millibottlenecks,
    overflow_episodes,
    saturation_episodes,
)
from repro.metrics.live import LiveConfig
from repro.metrics.online import OnlineEpisodeDetector, OnlineSaturationTracker
from repro.topology import SystemConfig

from conftest import tiny_mix


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def series(values, name="cpu:vm", interval=0.05):
    out = TimeSeries(name)
    for index, value in enumerate(values):
        out.append((index + 1) * interval, value)
    return out


def online(values, threshold, **params):
    s = series(values)
    tracker = OnlineSaturationTracker("cpu:vm", threshold, **params)
    for time, value in zip(s.times, s.values):
        tracker.feed(time, value)
    return tracker.finish()


def offline(values, threshold, **params):
    return saturation_episodes(series(values), threshold, **params)


def tiny_config(nx=0, **overrides):
    defaults = dict(
        nx=nx, seed=11,
        web_threads=8, app_threads=8, db_threads=4,
        web_backlog=4, app_backlog=4, db_backlog=4,
        db_pool_size=4, web_spawn_extra_process=False,
        lite_q_depth=64, xtomcat_workers=8,
        interaction_specs=tiny_mix(stochastic=True),
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def assert_run_equivalent(result):
    """The live detector of a finished run answers exactly like the
    offline pass over the same monitor series."""
    telemetry = result.telemetry
    assert telemetry is not None
    detector = telemetry.detector
    monitor = result.monitor
    assert detector.millibottlenecks() == detect_millibottlenecks(monitor)
    live_overflow = detector.overflow()
    for name, server in result.system.server_items():
        backlog = monitor.backlog.get(name)
        if backlog is None:
            assert name not in live_overflow
            continue
        assert live_overflow[name] == overflow_episodes(
            backlog, server.listener.backlog, name=name
        )
    assert detector.open_episodes() == []


# ----------------------------------------------------------------------
# property tests: random series, several parameter regimes
# ----------------------------------------------------------------------
PARAM_GRID = [
    dict(min_duration=0.0),
    dict(min_duration=0.05),
    dict(min_duration=0.05, max_duration=0.3),
    dict(min_duration=0.0, merge_gap=0.06),
    dict(min_duration=0.1, max_duration=0.5, merge_gap=0.11),
]


@pytest.mark.parametrize("params", PARAM_GRID)
@pytest.mark.parametrize("seed", range(6))
def test_random_series_equivalence(seed, params):
    rng = random.Random(seed)
    # bursty gauge: mostly idle, occasional saturated stretches
    values = []
    for _ in range(400):
        if rng.random() < 0.25:
            values.extend([rng.uniform(0.96, 1.0)] * rng.randint(1, 6))
        else:
            values.extend([rng.uniform(0.0, 0.95)] * rng.randint(1, 4))
    assert online(values, 0.95, **params) == offline(values, 0.95, **params)


@pytest.mark.parametrize("params", PARAM_GRID)
def test_boundary_value_series_equivalence(params):
    # values exactly at the threshold (strictly-above convention) and
    # alternating single-sample spikes — the merge/filter edge cases
    values = [0.95, 0.96, 0.95, 0.96, 0.95, 0.94, 0.96, 0.96,
              0.95, 0.96] * 10
    assert online(values, 0.95, **params) == offline(values, 0.95, **params)


def test_feed_batching_does_not_matter():
    # episodes must not depend on how samples are chunked into
    # on_sample() rounds — feed one-by-one vs all-at-once
    values = [0.99, 0.99, 0.1, 0.99, 0.1, 0.99, 0.99, 0.99, 0.2]
    s = series(values)
    one_by_one = OnlineSaturationTracker("cpu:vm", 0.95, min_duration=0.0,
                                         merge_gap=0.06)
    for time, value in zip(s.times, s.values):
        one_by_one.feed(time, value)
    bulk = OnlineSaturationTracker("cpu:vm", 0.95, min_duration=0.0,
                                   merge_gap=0.06)
    for time, value in zip(s.times, s.values):
        bulk.feed(time, value)
    assert one_by_one.finish() == bulk.finish()
    assert one_by_one.finish() == offline(values, 0.95, min_duration=0.0,
                                          merge_gap=0.06)


# ----------------------------------------------------------------------
# satellite edge cases, offline and online side by side
# ----------------------------------------------------------------------
def test_edge_episode_open_at_end_of_run():
    # the gauge is still saturated when the run ends: both detectors
    # close the span at the last sample time
    values = [0.1, 0.99, 1.0, 0.99]
    for params in (dict(min_duration=0.0), dict(min_duration=0.0,
                                                merge_gap=0.1)):
        off = offline(values, 0.95, **params)
        on = online(values, 0.95, **params)
        assert on == off
        assert len(off) == 1
        assert off[0].end == pytest.approx(0.20)   # last sample time
        assert off[0].peak == pytest.approx(1.0)


def test_edge_open_at_end_visible_before_finish():
    # before finish() the online tracker exposes the growing span —
    # the offline detector cannot see it at all until the series ends
    tracker = OnlineSaturationTracker("vm", 0.95, min_duration=0.0)
    tracker.feed(0.05, 0.99)
    tracker.feed(0.10, 1.0)
    assert tracker.episodes == []
    span = tracker.open_span()
    assert span["start"] == pytest.approx(0.05)
    assert span["last_seen"] == pytest.approx(0.10)
    assert span["peak"] == pytest.approx(1.0)
    episodes = tracker.finish()
    assert len(episodes) == 1
    assert tracker.open_span() is None or tracker.episodes  # flushed


def test_edge_zero_length_series():
    # a gauge that never sampled: no episodes, no crash, either way
    empty = TimeSeries("cpu:vm")
    assert saturation_episodes(empty, 0.95) == []
    tracker = OnlineSaturationTracker("cpu:vm", 0.95)
    assert tracker.finish() == []
    assert tracker.open_span() is None


def test_edge_single_saturated_sample():
    # one sample above threshold and nothing else: the raw span closes
    # at the last (= only) sample time, so it has zero duration — kept
    # only when min_duration is 0, in both detectors
    values = [0.99]
    assert offline(values, 0.95, min_duration=0.05) == []
    assert online(values, 0.95, min_duration=0.05) == []
    off = offline(values, 0.95, min_duration=0.0)
    on = online(values, 0.95, min_duration=0.0)
    assert on == off
    assert len(off) == 1
    assert off[0].start == off[0].end == pytest.approx(0.05)


def test_tracker_parameter_validation_matches_offline():
    with pytest.raises(ValueError):
        OnlineSaturationTracker("vm", 0.95, min_duration=-1)
    with pytest.raises(ValueError):
        OnlineSaturationTracker("vm", 0.95, merge_gap=-0.1)


def test_feed_after_finish_raises():
    tracker = OnlineSaturationTracker("vm", 0.95)
    tracker.finish()
    with pytest.raises(RuntimeError):
        tracker.feed(1.0, 0.99)
    # finish() stays idempotent
    assert tracker.finish() == []


# ----------------------------------------------------------------------
# OnlineEpisodeDetector over a monitor-shaped object
# ----------------------------------------------------------------------
class _FakeMonitor:
    def __init__(self):
        self.cpu = {}
        self.iowait = {}
        self.listeners = []


def test_detector_picks_up_series_lazily():
    # a consolidation antagonist's VM appears mid-run: the detector
    # must start its tracker from sample 0 without double-feeding
    monitor = _FakeMonitor()
    monitor.cpu["web"] = series([0.1, 0.99, 0.99, 0.1])
    detector = OnlineEpisodeDetector(monitor, min_duration=0.0)
    detector.on_sample()
    late = series([0.99, 0.99, 0.99, 0.1])
    monitor.cpu["antagonist"] = late
    detector.on_sample()
    detector.on_sample()   # nothing new: cursors must hold
    detector.finish()
    expected = detect_millibottlenecks(monitor, min_duration=0.0)
    assert detector.millibottlenecks() == expected
    assert {e.resource for e in expected} == {"web", "antagonist"}


def test_detector_overflow_tracker_equivalence():
    monitor = _FakeMonitor()
    depths = series([1, 3, 63, 64, 64, 62, 64, 2, 0], name="web")
    detector = OnlineEpisodeDetector(monitor)
    detector.watch_overflow("web", depths, 64)
    detector.on_sample()
    detector.finish()
    assert detector.overflow()["web"] == overflow_episodes(
        depths, 64, name="web"
    )
    assert detector.episode_count() == len(detector.overflow()["web"])


# ----------------------------------------------------------------------
# real-run equivalence across the scenario shapes of the quick registry
# ----------------------------------------------------------------------
def live_scenario(nx=0, **kwargs):
    return Scenario(tiny_config(nx=nx), clients=60, think_mean=1.0,
                    duration=10.0, warmup=2.0,
                    live=LiveConfig(interval=1.0), **kwargs)


def test_run_equivalence_plain():
    assert_run_equivalent(live_scenario().run())


def test_run_equivalence_consolidation():
    result = live_scenario().with_consolidation("app", period=3.0).run()
    assert_run_equivalent(result)
    # the consolidation antagonist must actually produce episodes for
    # the equivalence to be meaningful
    assert result.telemetry.detector.millibottlenecks()


@pytest.mark.slow
def test_run_equivalence_quick_registry_experiments():
    # the real thing: registry experiments (not scaled-down doubles)
    # run under ambient live mode, online answers == offline answers
    from repro.experiments import fig01_histograms, fig03_vm_consolidation
    from repro.experiments import fig05_log_flush
    from repro.experiments.timeline import run_timeline
    from repro.metrics import live as live_mode

    live_mode.configure(interval=2.0)
    try:
        for spec in (fig03_vm_consolidation.SPEC, fig05_log_flush.SPEC):
            result = run_timeline(spec, duration=14.0)
            assert_run_equivalent(result.run)
            # these figures exist because millibottlenecks happen:
            # the equivalence must be exercised on non-empty episode sets
            assert result.run.telemetry.detector.millibottlenecks()
        panel = fig01_histograms.run_one(7000, duration=12.0, warmup=2.0)
        assert_run_equivalent(panel["result"])
    finally:
        live_mode.reset()


@pytest.mark.slow
def test_run_equivalence_across_registry_shapes():
    # the workload shapes the quick registry drives: RPC chain depth 1,
    # consolidation on the db tier, and a streaming log
    shapes = [
        live_scenario(nx=1),
        live_scenario().with_consolidation("db", period=3.0),
        Scenario(tiny_config(streaming=True), clients=60, think_mean=1.0,
                 duration=10.0, warmup=2.0,
                 live=LiveConfig(interval=1.0)),
    ]
    for scenario in shapes:
        assert_run_equivalent(scenario.run())
