"""Unit tests for the cache/storage experiment (claims + plumbing).

The outcome logic runs against synthetic cells so every hold/fail
branch is exercised without paying for a simulation; one short real
``run_one`` cell pins the cell schema those synthetic dicts mimic.
"""

import pytest

from repro.experiments.cache_storage import (
    BOUNDED_BUFFER,
    VARIANTS,
    build_cache_storage,
    cache_storage_outcomes,
    check_claims,
    report,
    run,
    run_one,
)

CLAIMS = (
    "warm_cache_hides_backing_tier",
    "invalidation_storm_mints_vlrt",
    "storm_attribution_covers",
    "singleflight_restores_tail",
    "codel_restores_tail",
    "write_buffer_bloats_tail",
    "bounded_buffer_restores_tail",
)


# ----------------------------------------------------------------------
# synthetic cells
# ----------------------------------------------------------------------
def cache_cell(vlrt=0, failed=0, hit_ratio=1.0, db_drops=0, db_sheds=0,
               coalesced=0, bursts=0, coverage=1.0,
               kinds=("cache-miss burst",)):
    return {
        "family": "cache",
        "rate": 600.0,
        "summary": {
            "vlrt": vlrt,
            "failed": failed,
            "drops_by_server": {"db": db_drops} if db_drops else {},
            "sheds_by_server": {"db": db_sheds} if db_sheds else {},
            "throughput_rps": 600.0,
            "p50_ms": 6.0,
            "p99_ms": 12.0,
        },
        "cache": {"hit_ratio": hit_ratio, "coalesced": coalesced},
        "bursts": list(range(bursts)),
        "attribution": {
            "coverage": coverage,
            "tail": 40,
            "kinds": {kind: 40 for kind in kinds},
        },
    }


def storage_cell(p50=2.0, p99=4.0, throughput=500.0, rate=500.0,
                 buffer_max=2, stalls=0):
    return {
        "family": "storage",
        "rate": rate,
        "summary": {
            "vlrt": 0,
            "failed": 0,
            "drops_by_server": {},
            "throughput_rps": throughput,
            "p50_ms": p50,
            "p99_ms": p99,
        },
        "storage": {"write_buffer_max": buffer_max, "write_stalls": stalls},
    }


def good_cells():
    """A full grid where every claim holds."""
    return {
        "baseline": cache_cell(),
        "storm": cache_cell(vlrt=200, db_drops=150, bursts=2,
                            coverage=0.97, hit_ratio=0.9),
        "storm_singleflight": cache_cell(vlrt=1, coalesced=900,
                                         hit_ratio=0.9),
        "storm_codel": cache_cell(vlrt=2, db_sheds=300, hit_ratio=0.9),
        "bufferbloat": storage_cell(p99=120.0,
                                    buffer_max=4 * BOUNDED_BUFFER),
        "bufferbloat_bounded": storage_cell(p99=5.0,
                                            buffer_max=BOUNDED_BUFFER,
                                            stalls=40),
    }


# ----------------------------------------------------------------------
# outcome logic, claim by claim
# ----------------------------------------------------------------------
def test_full_good_grid_holds_everywhere():
    outcomes = cache_storage_outcomes(good_cells())
    assert tuple(outcomes) == CLAIMS
    assert all(evidence["holds"] for evidence in outcomes.values())
    assert check_claims(good_cells()) == []


def test_missing_cells_report_none_not_failure():
    outcomes = cache_storage_outcomes({})
    assert tuple(outcomes) == CLAIMS
    assert all(evidence == {"holds": None}
               for evidence in outcomes.values())
    # unrun is not broken: check_claims stays green
    assert check_claims({}) == []


def test_partial_grid_mixes_real_and_none():
    cells = {"baseline": cache_cell(), "storm": good_cells()["storm"]}
    outcomes = cache_storage_outcomes(cells)
    assert outcomes["warm_cache_hides_backing_tier"]["holds"] is True
    assert outcomes["invalidation_storm_mints_vlrt"]["holds"] is True
    # restored-variant claims need their counterpart cells
    assert outcomes["singleflight_restores_tail"]["holds"] is None
    assert outcomes["codel_restores_tail"]["holds"] is None
    assert outcomes["write_buffer_bloats_tail"]["holds"] is None


def test_cold_baseline_fails_the_warm_cache_claim():
    cells = {"baseline": cache_cell(hit_ratio=0.5)}
    outcomes = cache_storage_outcomes(cells)
    assert outcomes["warm_cache_hides_backing_tier"]["holds"] is False
    assert check_claims(cells) == [
        "cache/storage outcome warm_cache_hides_backing_tier "
        "does not hold"
    ]


def test_storm_claim_needs_vlrt_drops_and_a_burst():
    quiet = {"storm": cache_cell(vlrt=0, db_drops=0, bursts=0)}
    assert cache_storage_outcomes(quiet)[
        "invalidation_storm_mints_vlrt"]["holds"] is False
    no_burst = {"storm": cache_cell(vlrt=100, db_drops=50, bursts=0)}
    assert cache_storage_outcomes(no_burst)[
        "invalidation_storm_mints_vlrt"]["holds"] is False


def test_attribution_claim_needs_coverage_and_the_burst_kind():
    low = {"storm": cache_cell(vlrt=100, db_drops=50, bursts=1,
                               coverage=0.8)}
    assert cache_storage_outcomes(low)[
        "storm_attribution_covers"]["holds"] is False
    wrong_kind = {"storm": cache_cell(vlrt=100, db_drops=50, bursts=1,
                                      coverage=0.95, kinds=("cpu",))}
    assert cache_storage_outcomes(wrong_kind)[
        "storm_attribution_covers"]["holds"] is False


def test_singleflight_claim_tolerates_a_sliver_of_vlrt():
    cells = {"storm": cache_cell(vlrt=200, db_drops=150, bursts=1,
                                 coverage=0.95)}
    # budget = max(2, 2 % of 200) = 4
    cells["storm_singleflight"] = cache_cell(vlrt=4, coalesced=10)
    assert cache_storage_outcomes(cells)[
        "singleflight_restores_tail"]["holds"] is True
    cells["storm_singleflight"] = cache_cell(vlrt=5, coalesced=10)
    assert cache_storage_outcomes(cells)[
        "singleflight_restores_tail"]["holds"] is False
    # a "restored" cell that never coalesced proves nothing
    cells["storm_singleflight"] = cache_cell(vlrt=0, coalesced=0)
    assert cache_storage_outcomes(cells)[
        "singleflight_restores_tail"]["holds"] is False


def test_codel_claim_requires_sheds_instead_of_drops():
    cells = {"storm": cache_cell(vlrt=200, db_drops=150, bursts=1,
                                 coverage=0.95)}
    cells["storm_codel"] = cache_cell(vlrt=0, db_sheds=0)
    assert cache_storage_outcomes(cells)[
        "codel_restores_tail"]["holds"] is False
    cells["storm_codel"] = cache_cell(vlrt=0, db_sheds=120, db_drops=3)
    assert cache_storage_outcomes(cells)[
        "codel_restores_tail"]["holds"] is False
    cells["storm_codel"] = cache_cell(vlrt=0, db_sheds=120)
    assert cache_storage_outcomes(cells)[
        "codel_restores_tail"]["holds"] is True


def test_bloat_claim_needs_inflation_at_held_throughput():
    # p99 inflated but throughput collapsed: a capacity problem, not
    # bufferbloat
    slow = {"bufferbloat": storage_cell(p99=120.0, throughput=200.0,
                                        buffer_max=4 * BOUNDED_BUFFER)}
    assert cache_storage_outcomes(slow)[
        "write_buffer_bloats_tail"]["holds"] is False
    shallow = {"bufferbloat": storage_cell(p99=120.0, buffer_max=8)}
    assert cache_storage_outcomes(shallow)[
        "write_buffer_bloats_tail"]["holds"] is False


def test_bounded_claim_needs_stalls_and_a_collapsed_tail():
    cells = {"bufferbloat": storage_cell(p99=120.0,
                                         buffer_max=4 * BOUNDED_BUFFER)}
    cells["bufferbloat_bounded"] = storage_cell(p99=5.0,
                                                buffer_max=BOUNDED_BUFFER,
                                                stalls=0)
    assert cache_storage_outcomes(cells)[
        "bounded_buffer_restores_tail"]["holds"] is False
    cells["bufferbloat_bounded"] = storage_cell(p99=100.0,
                                                buffer_max=BOUNDED_BUFFER,
                                                stalls=40)
    assert cache_storage_outcomes(cells)[
        "bounded_buffer_restores_tail"]["holds"] is False


# ----------------------------------------------------------------------
# plumbing
# ----------------------------------------------------------------------
def test_report_renders_both_tables_and_all_marks():
    text = report(good_cells())
    assert "cache-miss storms" in text
    assert "write-back bufferbloat" in text
    for claim in CLAIMS:
        assert claim in text
    assert "FAIL" not in text
    partial = report({"baseline": cache_cell()})
    assert "[??]" in partial            # unrun claims render as unknown


def test_run_one_rejects_unknown_variant():
    with pytest.raises(ValueError, match="unknown variant 'warm'"):
        run_one("warm")


def test_run_rejects_unknown_variant_subset():
    with pytest.raises(ValueError, match="unknown variant 'warm'"):
        run(variants=["baseline", "warm"])


def test_build_exposes_every_variant():
    for name in VARIANTS:
        system = build_cache_storage(name, seed=1)
        assert system.sim is not None


def test_run_one_cell_schema_matches_the_synthetic_cells():
    """A real (tiny) baseline cell carries exactly the keys the
    synthetic claim cells mimic."""
    cell = run_one("baseline", clients=700, duration=4.0, warmup=1.0,
                   seed=7)
    assert cell["family"] == "cache"
    for key in ("vlrt", "failed", "drops_by_server", "throughput_rps",
                "p50_ms", "p99_ms"):
        assert key in cell["summary"]
    assert set(cell["cache"]) >= {"hit_ratio", "coalesced"}
    assert "coverage" in cell["attribution"]
    assert isinstance(cell["bursts"], list)
    assert cell["rate"] == pytest.approx(100.0)   # 700 clients / 7 s
