"""Unit tests for the §III condition models (repro.core.conditions)."""

import pytest

from repro.core import (
    StaticConditions,
    max_sys_q_depth,
    minimum_millibottleneck_duration,
    predicted_overflow,
)


def test_max_sys_q_depth_paper_numbers():
    assert max_sys_q_depth(150, 128) == 278  # Apache
    assert max_sys_q_depth(165, 128) == 293  # Tomcat (NX=1)
    assert max_sys_q_depth(100, 128) == 228  # MySQL
    with pytest.raises(ValueError):
        max_sys_q_depth(-1, 128)


def test_predicted_overflow_paper_example():
    """The paper's arithmetic: 1000 req/s * 0.4 s vs 278 -> 122 dropped."""
    assert predicted_overflow(1000, 0.4, 278) == pytest.approx(122)


def test_predicted_overflow_no_drop_when_short():
    assert predicted_overflow(1000, 0.2, 278) == 0.0


def test_predicted_overflow_with_drain():
    # the stalled server still completes 200 req/s: absorbed 278+80
    assert predicted_overflow(1000, 0.4, 278, drain_rate=200) == pytest.approx(42)


def test_predicted_overflow_validation():
    with pytest.raises(ValueError):
        predicted_overflow(-1, 0.4, 278)


def test_minimum_duration_inverts_the_model():
    threshold = minimum_millibottleneck_duration(1000, 278)
    assert threshold == pytest.approx(0.278)
    assert predicted_overflow(1000, threshold * 0.99, 278) == 0.0
    assert predicted_overflow(1000, threshold * 1.01, 278) > 0.0


def test_minimum_duration_infinite_when_drain_keeps_up():
    assert minimum_millibottleneck_duration(100, 278, drain_rate=100) == float("inf")


def test_minimum_duration_validation():
    with pytest.raises(ValueError):
        minimum_millibottleneck_duration(0, 278)


def test_static_conditions_all_met():
    conditions = StaticConditions.from_observations(
        any_sync_server=True, burst_intensity=10.0,
        median_service_ms=5.0, peak_avg_utilization=0.75,
    )
    assert conditions.all_met()
    assert conditions.unmet() == []


def test_static_conditions_async_stack_unmet():
    conditions = StaticConditions.from_observations(
        any_sync_server=False, burst_intensity=10.0,
        median_service_ms=5.0, peak_avg_utilization=0.75,
    )
    assert not conditions.all_met()
    assert conditions.unmet() == ["synchronous_rpc"]


def test_static_conditions_persistent_bottleneck_unmet():
    conditions = StaticConditions.from_observations(
        any_sync_server=True, burst_intensity=10.0,
        median_service_ms=5.0, peak_avg_utilization=0.97,
    )
    assert "moderate_utilization" in conditions.unmet()


def test_static_conditions_long_requests_unmet():
    conditions = StaticConditions.from_observations(
        any_sync_server=True, burst_intensity=10.0,
        median_service_ms=500.0, peak_avg_utilization=0.5,
    )
    assert "short_requests" in conditions.unmet()


def test_static_conditions_steady_workload_unmet():
    conditions = StaticConditions.from_observations(
        any_sync_server=True, burst_intensity=1.0,
        median_service_ms=5.0, peak_avg_utilization=0.5,
    )
    assert "bursty_workload" in conditions.unmet()
