"""Unit tests for the event-driven server (repro.servers.async_server)."""

import pytest

from repro.apps.servlet import Call, Compute, Request
from repro.cpu import Host
from repro.net import NetworkFabric
from repro.servers import AsyncServer, SyncServer
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=31)


@pytest.fixture
def fabric(sim):
    return NetworkFabric(sim, latency=0.0, rto=3.0, max_retransmits=3)


def make_vm(sim, name="vm", cores=1):
    return Host(sim, cores=cores, name=f"{name}-host").add_vm(name)


def compute_handler(work):
    def handler(ctx, request):
        yield Compute(work)
        return {"served": request.operation}

    return handler


def two_stage_handler(pre, post, target="db"):
    """Cheap pre-query stage, downstream call, expensive post stage."""

    def handler(ctx, request):
        yield Compute(pre)
        result = yield Call(target, request.operation)
        yield Compute(post)
        return result

    return handler


def send(sim, fabric, listener, operation="op"):
    outcomes = []

    def client():
        request = Request("K", operation, sim.now)
        exchange = fabric.send(listener, request)
        try:
            outcomes.append((yield exchange.response))
        except Exception as exc:
            outcomes.append(exc)

    sim.process(client())
    return outcomes


# ----------------------------------------------------------------------
# basics
# ----------------------------------------------------------------------
def test_serves_single_request(sim, fabric):
    server = AsyncServer(sim, fabric, "srv", make_vm(sim),
                         compute_handler(0.01), workers=1)
    outcomes = send(sim, fabric, server.listener, "hi")
    sim.run()
    assert outcomes[0].ok and outcomes[0].value == {"served": "hi"}
    assert server.stats.completed == 1
    assert server.inflight == 0


def test_admission_is_immediate_backlog_stays_empty(sim, fabric):
    server = AsyncServer(sim, fabric, "srv", make_vm(sim),
                         compute_handler(1.0), workers=1, backlog=2)
    for i in range(50):
        send(sim, fabric, server.listener, f"r{i}")
    sim.run(until=0.1)
    assert server.inflight == 50         # all admitted to the lite queue
    assert server.listener.backlog_length == 0
    assert server.listener.drops == 0    # a sync server would have dropped 47


def test_lite_q_depth_bounds_admission(sim, fabric):
    server = AsyncServer(sim, fabric, "srv", make_vm(sim),
                         compute_handler(10.0), workers=1,
                         lite_q_depth=3, backlog=2)
    for i in range(10):
        send(sim, fabric, server.listener, f"r{i}")
    sim.run(until=0.5)
    assert server.inflight == 3
    assert server.listener.backlog_length == 2  # overflow fell back
    assert server.listener.drops == 5


def test_backlog_drains_into_lite_queue_when_space_frees(sim, fabric):
    server = AsyncServer(sim, fabric, "srv", make_vm(sim),
                         compute_handler(0.5), workers=1,
                         lite_q_depth=2, backlog=4)
    for i in range(4):
        send(sim, fabric, server.listener, f"r{i}")
    sim.run(until=0.1)
    assert server.inflight == 2 and server.listener.backlog_length == 2
    sim.run()
    assert server.stats.completed == 4
    assert server.listener.backlog_length == 0


def test_workers_bound_concurrent_execution(sim, fabric):
    """Executor mode (XMySQL): 2 workers, 6 half-second jobs on 4 cores
    -> exactly 2 execute at a time."""
    server = AsyncServer(sim, fabric, "srv", make_vm(sim, cores=4),
                         compute_handler(0.5), workers=2)
    for i in range(6):
        send(sim, fabric, server.listener, f"r{i}")
    sim.run(until=0.25)
    assert server.inflight == 6
    assert server.ready_events == 4  # 2 executing, 4 parked in the queue
    sim.run()
    assert server.stats.completed == 6


def test_invalid_parameters(sim, fabric):
    with pytest.raises(ValueError):
        AsyncServer(sim, fabric, "s", make_vm(sim), compute_handler(0.1),
                    lite_q_depth=0)
    with pytest.raises(ValueError):
        AsyncServer(sim, fabric, "s", make_vm(sim), compute_handler(0.1),
                    workers=0)


# ----------------------------------------------------------------------
# non-blocking downstream calls — no upstream CTQO
# ----------------------------------------------------------------------
def test_worker_not_held_during_downstream_call(sim, fabric):
    """One worker, slow downstream: both requests' pre-stages complete
    immediately — the worker is free while calls are outstanding."""
    db_vm = make_vm(sim, "db", cores=4)
    db = SyncServer(sim, fabric, "db", db_vm, compute_handler(1.0),
                    threads=4, backlog=8)
    app = AsyncServer(sim, fabric, "app", make_vm(sim, "app"),
                      two_stage_handler(0.001, 0.001), workers=1)
    app.connect("db", db.listener)
    a = send(sim, fabric, app.listener, "a")
    b = send(sim, fabric, app.listener, "b")
    sim.run(until=0.5)
    assert db.busy_threads == 2  # both queries issued concurrently
    sim.run()
    assert a[0].ok and b[0].ok


def test_no_upstream_ctqo_when_downstream_stalls(sim, fabric):
    """The paper's NX>=1 claim: a stalled downstream cannot overflow an
    async upstream — requests park in the lightweight queue instead."""
    db_vm = make_vm(sim, "db")
    db = SyncServer(sim, fabric, "db", db_vm, compute_handler(0.001),
                    threads=2, backlog=2)
    app = AsyncServer(sim, fabric, "app", make_vm(sim, "app"),
                      two_stage_handler(0.0001, 0.0001), workers=1,
                      lite_q_depth=65535)
    app.connect("db", db.listener)
    db_vm.freeze(5.0)
    for i in range(100):
        send(sim, fabric, app.listener, f"r{i}")
    sim.run(until=1.0)
    assert app.listener.drops == 0       # no upstream CTQO...
    assert app.inflight > 90             # ...just buffering
    assert db.listener.drops > 0         # downstream CTQO at the sync tier


def test_batch_flood_after_own_millibottleneck(sim, fabric):
    """The paper's Fig 9 mechanism in miniature: during the async tier's
    own stall requests pile up pre-query; when it ends they fire their
    queries as a batch that overwhelms the bounded downstream."""
    app_vm = make_vm(sim, "app")
    db_vm = make_vm(sim, "db", cores=1)
    db = SyncServer(sim, fabric, "db", db_vm, compute_handler(0.050),
                    threads=2, backlog=4)
    app = AsyncServer(sim, fabric, "app", app_vm,
                      two_stage_handler(0.0001, 0.0001), workers=4)
    app.connect("db", db.listener)
    app_vm.freeze(1.0)  # the millibottleneck in the async tier
    for i in range(30):
        send(sim, fabric, app.listener, f"r{i}")
    sim.run(until=0.9)
    assert db.queue_depth() == 0      # nothing reached the db during stall
    assert app.inflight == 30
    sim.run(until=1.2)                # stall ended: the batch flood
    assert db.listener.drops > 0      # 30 queries vs MaxSysQDepth(db)=6


def test_failure_reply_counted_not_completed(sim, fabric):
    server = AsyncServer(sim, fabric, "srv", make_vm(sim),
                         two_stage_handler(0.001, 0.001, target="nowhere"),
                         workers=1)
    outcomes = send(sim, fabric, server.listener, "x")
    sim.run()
    assert not outcomes[0].ok
    assert server.stats.failed == 1
    assert server.stats.completed == 0
    assert server.inflight == 0


def test_connection_timeout_resumes_continuation_with_error(sim, fabric):
    dead = fabric.listener("dead", backlog=0)
    server = AsyncServer(sim, fabric, "srv", make_vm(sim),
                         two_stage_handler(0.001, 0.001, target="dead"),
                         workers=1)
    server.connect("dead", dead)
    outcomes = send(sim, fabric, server.listener, "x")
    sim.run(until=30.0)
    assert outcomes and not outcomes[0].ok
    assert server.inflight == 0
    assert server.stats.downstream_failures == 1


def test_servlet_can_catch_downstream_failure(sim, fabric):
    from repro.apps.servlet import ServletError

    def forgiving(ctx, request):
        yield Compute(0.001)
        try:
            result = yield Call("dead", "q")
        except ServletError:
            result = {"fallback": True}
        return result

    dead = fabric.listener("dead", backlog=0)
    server = AsyncServer(sim, fabric, "srv", make_vm(sim), forgiving,
                         workers=1)
    server.connect("dead", dead)
    outcomes = send(sim, fabric, server.listener, "x")
    sim.run(until=30.0)
    assert outcomes[0].ok
    assert outcomes[0].value == {"fallback": True}


def test_async_pool_defers_sends_without_blocking_worker(sim, fabric):
    """A pooled async connector queues sends but never holds the worker."""
    db = SyncServer(sim, fabric, "db", make_vm(sim, "db", cores=4),
                    compute_handler(0.5), threads=4, backlog=8)
    app = AsyncServer(sim, fabric, "app", make_vm(sim, "app"),
                      two_stage_handler(0.001, 0.001), workers=1)
    app.connect("db", db.listener, pool_size=1)
    for i in range(3):
        send(sim, fabric, app.listener, f"r{i}")
    sim.run(until=0.25)
    assert db.queue_depth() == 1      # pool caps outstanding queries
    assert app.inflight == 3          # but nothing blocks the worker
    sim.run()
    assert app.stats.completed == 3


# ----------------------------------------------------------------------
# downstream pacing (extension beyond the paper)
# ----------------------------------------------------------------------
def test_pace_rate_validation(sim, fabric):
    with pytest.raises(ValueError):
        AsyncServer(sim, fabric, "s", make_vm(sim), compute_handler(0.1),
                    pace_rate=0)


def test_pacing_spreads_downstream_calls(sim, fabric):
    """20 simultaneous requests, pace 100/s: queries arrive 10 ms apart."""
    db = SyncServer(sim, fabric, "db", make_vm(sim, "db", cores=4),
                    compute_handler(0.0001), threads=64, backlog=64)
    app = AsyncServer(sim, fabric, "app", make_vm(sim, "app"),
                      two_stage_handler(0.00001, 0.00001), workers=8,
                      pace_rate=100.0)
    app.connect("db", db.listener)
    arrivals = []
    original = db.listener.deliver

    def spy(exchange):
        arrivals.append(sim.now)
        return original(exchange)

    db.listener.deliver = spy
    for i in range(20):
        send(sim, fabric, app.listener, f"r{i}")
    sim.run()
    assert len(arrivals) == 20
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert min(gaps) >= 0.01 - 1e-9  # never faster than the pace


def test_pacing_defuses_batch_flood(sim, fabric):
    """The Fig 9 mitigation: the same post-stall batch that overflows an
    unpaced downstream is absorbed when the async tier paces its calls."""

    def run_once(pace_rate):
        s = Simulator(seed=31)
        f = NetworkFabric(s, latency=0.0, rto=3.0)
        app_vm = make_vm(s, "app")
        db = SyncServer(s, f, "db", make_vm(s, "db"),
                        compute_handler(0.010), threads=2, backlog=4)
        app = AsyncServer(s, f, "app", app_vm,
                          two_stage_handler(0.0001, 0.0001), workers=4,
                          pace_rate=pace_rate)
        app.connect("db", db.listener)
        app_vm.freeze(1.0)
        for i in range(30):
            request = Request("K", f"r{i}", s.now)
            f.send(app.listener, request)
        s.run(until=3.0)
        return db.listener.drops

    assert run_once(pace_rate=None) > 0     # the paper's Fig 9
    assert run_once(pace_rate=80.0) == 0    # paced below db capacity
