"""Focused tests for the host's weighted water-filling allocator and
the accounting series the monitors consume."""

import pytest

from repro.cpu import Host
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=19)


def finish_times(sim, jobs):
    """jobs: list of (vm, work); returns completion times in order."""
    done = {}
    for index, (vm, work) in enumerate(jobs):
        vm.execute(work).add_callback(
            lambda ev, i=index: done.setdefault(i, sim.now)
        )
    sim.run()
    return [done[i] for i in range(len(jobs))]


# ----------------------------------------------------------------------
# three-way weighted splits
# ----------------------------------------------------------------------
def test_three_vms_weighted_split(sim):
    host = Host(sim, cores=1)
    a = host.add_vm("a", shares=2.0)
    b = host.add_vm("b", shares=1.0)
    c = host.add_vm("c", shares=1.0)
    # all demand continuously: a gets 0.5, b and c 0.25 each
    times = finish_times(sim, [(a, 0.5), (b, 0.25), (c, 0.25)])
    assert times[0] == pytest.approx(1.0)
    assert times[1] == pytest.approx(1.0)
    assert times[2] == pytest.approx(1.0)


def test_demand_capped_vm_releases_surplus_to_others(sim):
    host = Host(sim, cores=2)
    small = host.add_vm("small", vcpus=1, shares=10.0)  # high shares, low cap
    big = host.add_vm("big", vcpus=2, shares=1.0)
    # small can use at most 1 core despite its shares; big gets the rest
    done = {}
    small.execute(1.0).add_callback(lambda ev: done.setdefault("s", sim.now))
    big.execute(1.0).add_callback(lambda ev: done.setdefault("b1", sim.now))
    big.execute(1.0).add_callback(lambda ev: done.setdefault("b2", sim.now))
    sim.run()
    assert done["s"] == pytest.approx(1.0)   # full core despite sharing
    # big shares 1 core while small runs (0.5 done each by t=1), then
    # expands to both cores: remaining 0.5 each at full speed -> t=1.5
    assert done["b1"] == pytest.approx(1.5)
    assert done["b2"] == pytest.approx(1.5)


def test_multihost_independence(sim):
    host_a = Host(sim, cores=1, name="a")
    host_b = Host(sim, cores=1, name="b")
    vm_a = host_a.add_vm("vm-a")
    vm_b = host_b.add_vm("vm-b")
    times = finish_times(sim, [(vm_a, 1.0), (vm_b, 1.0)])
    # separate hosts: no sharing whatsoever
    assert times[0] == pytest.approx(1.0)
    assert times[1] == pytest.approx(1.0)


def test_allocation_shifts_when_vm_goes_idle(sim):
    host = Host(sim, cores=1)
    a = host.add_vm("a")
    b = host.add_vm("b")
    done = {}
    a.execute(0.25).add_callback(lambda ev: done.setdefault("a", sim.now))
    b.execute(0.75).add_callback(lambda ev: done.setdefault("b", sim.now))
    sim.run()
    # shared until a finishes its 0.25 at t=0.5; b then runs alone:
    # b had 0.25 done by 0.5, remaining 0.5 at full speed -> t=1.0
    assert done["a"] == pytest.approx(0.5)
    assert done["b"] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# accounting
# ----------------------------------------------------------------------
def test_runnable_equals_consumed_when_uncontended(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")

    def load():
        for _ in range(5):
            yield vm.execute(0.05)
            yield 0.05

    sim.process(load())
    sim.run()
    host.settle()
    assert vm.runnable == pytest.approx(vm.consumed)
    assert vm.consumed == pytest.approx(0.25)


def test_runnable_exceeds_consumed_when_starved(sim):
    host = Host(sim, cores=1)
    victim = host.add_vm("victim", shares=1.0)
    hog = host.add_vm("hog", shares=9.0)
    victim.execute(0.1)
    hog.execute(0.9)
    sim.run(until=1.0)
    host.settle()
    # over [0,1]: victim allocated 0.1 cores -> its 0.1 work takes the
    # whole second; it was runnable throughout
    assert victim.consumed == pytest.approx(0.1, abs=0.01)
    assert victim.runnable == pytest.approx(1.0, abs=0.01)


def test_frozen_time_not_runnable_but_iowait(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    vm.execute(0.5)
    vm.freeze(0.3)
    sim.run()
    host.settle()
    assert vm.iowait == pytest.approx(0.3)
    assert vm.runnable == pytest.approx(0.5)  # only the working time
    assert vm.consumed == pytest.approx(0.5)


def test_settle_is_idempotent(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    vm.execute(0.5)
    sim.run(until=0.25)
    host.settle()
    first = vm.consumed
    host.settle()
    assert vm.consumed == first


def test_host_busy_sums_vm_consumption(sim):
    host = Host(sim, cores=2)
    a = host.add_vm("a")
    b = host.add_vm("b")
    a.execute(0.3)
    b.execute(0.7)
    sim.run()
    host.settle()
    assert host.busy == pytest.approx(1.0)


def test_effective_less_than_consumed_with_overhead(sim):
    from repro.cpu import ThreadOverheadModel

    host = Host(sim, cores=1)
    vm = host.add_vm(
        "vm",
        efficiency=ThreadOverheadModel(switch_cost=0.1, gc_cost=0.0,
                                       free_threads=0),
    )
    for _ in range(4):
        vm.execute(0.1)
    sim.run()
    host.settle()
    assert vm.effective == pytest.approx(0.4)
    # eff(4) = 1/1.4 -> consumed = 0.4 * 1.4
    assert vm.consumed == pytest.approx(0.56, rel=0.05)
