"""The bench/profile command-line surface: --compare gate, new
calendar-queue workloads, and the cProfile wrapper.

These run real (tiny-scale) workloads through the same entry points CI
uses, so the regression gate's exit codes and the profiler's artifacts
are pinned by tests rather than by the workflow file alone.
"""

import json
import pstats

import pytest

from repro import bench
from repro.cli import main


def test_new_workloads_report_their_ops():
    assert bench.bench_wheel_schedule(0.01) == 2000
    assert bench.bench_far_timer_churn(0.01) == 1200
    assert bench.bench_sketch_fold(0.01) == 3000


def test_far_timer_churn_matches_heap_kernel(monkeypatch):
    """The churn workload executes the same event count under both
    schedulers (it exists to compare them)."""
    wheel = bench.bench_far_timer_churn(0.01)
    monkeypatch.setenv("REPRO_KERNEL", "heap")
    assert bench.bench_far_timer_churn(0.01) == wheel


# ----------------------------------------------------------------------
# compare_results
# ----------------------------------------------------------------------
def _entry(**ops_per_sec):
    return {
        "label": "baseline", "git_rev": "abc1234",
        "timestamp": "2026-08-08T00:00:00",
        "results": [{"name": name, "ops": 1000, "seconds": 1.0,
                     "ops_per_sec": value}
                    for name, value in ops_per_sec.items()],
    }


def test_compare_results_passes_within_threshold():
    results = [{"name": "a", "ops": 1000, "seconds": 1.0,
                "ops_per_sec": 950.0}]
    lines, regressions = bench.compare_results(
        results, _entry(a=1000.0), threshold=10.0)
    assert regressions == []
    assert lines[0].startswith("comparing against 'baseline'")
    assert any("+5.0%" in line for line in lines)  # the printed loss


def test_compare_results_flags_regression():
    results = [{"name": "a", "ops": 1000, "seconds": 1.0,
                "ops_per_sec": 500.0}]
    _lines, regressions = bench.compare_results(
        results, _entry(a=1000.0), threshold=10.0)
    assert regressions == ["a"]


def test_compare_results_ignores_new_workloads():
    results = [{"name": "brand_new", "ops": 10, "seconds": 1.0,
                "ops_per_sec": 10.0}]
    lines, regressions = bench.compare_results(
        results, _entry(a=1000.0), threshold=10.0)
    assert regressions == []
    assert any("new" in line for line in lines)


# ----------------------------------------------------------------------
# the CLI gate
# ----------------------------------------------------------------------
def _write_trajectory(path, entry):
    path.write_text(json.dumps({"description": "test", "entries": [entry]}))


def test_bench_compare_cli_passes_and_fails(tmp_path, capsys):
    trajectory = tmp_path / "traj.json"
    args = ["bench", "--scale", "0.01", "--only", "sketch_fold",
            "--compare", "--out", str(trajectory)]

    # generous baseline -> pass
    _write_trajectory(trajectory, _entry(sketch_fold=1.0))
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "no regression" in out

    # impossible baseline -> regression, exit 1
    _write_trajectory(trajectory, _entry(sketch_fold=1e15))
    assert main(args + ["--threshold", "50"]) == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.err
    assert "sketch_fold" in captured.err
    # compare mode never appends to the trajectory
    assert len(json.loads(trajectory.read_text())["entries"]) == 1


def test_bench_compare_cli_requires_a_trajectory(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["bench", "--scale", "0.01", "--only", "sketch_fold",
                 "--compare", "--out", str(missing)]) == 2
    assert "no trajectory" in capsys.readouterr().err


# ----------------------------------------------------------------------
# repro profile
# ----------------------------------------------------------------------
def test_profile_list_names_experiments_and_benchmarks(capsys):
    assert main(["profile", "list"]) == 0
    out = capsys.readouterr().out
    assert "fig01" in out
    assert "kernel_callbacks" in out
    assert "fig01_streaming_1m" in out


def test_profile_rejects_unknown_target(capsys):
    assert main(["profile", "no_such_thing"]) == 2
    assert "unknown profile target" in capsys.readouterr().err


def test_profile_benchmark_writes_loadable_pstats(tmp_path, capsys):
    dump = tmp_path / "kernel.prof"
    assert main(["profile", "kernel_callbacks", "--quick", "--top", "5",
                 "--out", str(dump)]) == 0
    out = capsys.readouterr().out
    assert "kernel_callbacks" in out
    assert "function calls" in out  # the pstats table rendered
    stats = pstats.Stats(str(dump))  # snakeviz-loadable binary dump
    assert stats.total_calls > 0
    run_frames = [key for key in stats.stats if key[2] == "run"]
    assert run_frames, "kernel run loop missing from the profile"


@pytest.mark.parametrize("flag", ["tottime", "cumulative"])
def test_profile_sort_orders_accepted(flag, capsys):
    assert main(["profile", "sketch_fold", "--quick", "--top", "3",
                 "--sort", flag]) == 0
    assert "sketch_fold" in capsys.readouterr().out
