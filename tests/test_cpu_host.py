"""Unit tests for the processor-sharing CPU model (repro.cpu.host)."""

import pytest

from repro.cpu import Host, PerfectEfficiency, ThreadOverheadModel
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=5)


def completion_times(sim, vm, works):
    """Submit jobs and return their completion times."""
    times = {}
    for i, work in enumerate(works):
        vm.execute(work).add_callback(
            lambda ev, i=i: times.setdefault(i, sim.now)
        )
    sim.run()
    return times


# ----------------------------------------------------------------------
# single VM basics
# ----------------------------------------------------------------------
def test_single_job_runs_at_full_speed(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    times = completion_times(sim, vm, [0.5])
    assert times[0] == pytest.approx(0.5)


def test_two_jobs_share_the_core_equally(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    times = completion_times(sim, vm, [1.0, 1.0])
    # each runs at 0.5 cores -> both finish at t=2
    assert times[0] == pytest.approx(2.0)
    assert times[1] == pytest.approx(2.0)


def test_unequal_jobs_processor_sharing(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    times = completion_times(sim, vm, [1.0, 3.0])
    # shared until the short job gets 1s of work at t=2; the long one then
    # has 2s left alone -> finishes at t=4.
    assert times[0] == pytest.approx(2.0)
    assert times[1] == pytest.approx(4.0)


def test_job_arriving_later_shares_from_arrival(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    times = {}
    vm.execute(2.0).add_callback(lambda ev: times.setdefault("a", sim.now))

    def late():
        yield 1.0
        vm.execute(0.5).add_callback(lambda ev: times.setdefault("b", sim.now))

    sim.process(late())
    sim.run()
    # a runs alone [0,1] (1s done), then shares: a needs 1s more at 0.5x
    # b needs 0.5 at 0.5x -> b finishes at t=2.0; a at 1 + 1.0/0.5 = 3.0... but
    # after b leaves at t=2, a has 0.5 left alone -> t=2.5.
    assert times["b"] == pytest.approx(2.0)
    assert times["a"] == pytest.approx(2.5)


def test_zero_work_completes_immediately(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    ev = vm.execute(0.0)
    assert ev.ok


def test_negative_work_raises(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    with pytest.raises(ValueError):
        vm.execute(-1.0)


def test_vcpu_cap_limits_vm_rate(sim):
    host = Host(sim, cores=4)
    vm = host.add_vm("vm", vcpus=1)
    times = completion_times(sim, vm, [1.0, 1.0])
    # Only 1 vcpu despite 4 cores: two jobs share one core.
    assert times[0] == pytest.approx(2.0)
    assert times[1] == pytest.approx(2.0)


def test_multicore_vm_runs_jobs_in_parallel(sim):
    host = Host(sim, cores=4)
    vm = host.add_vm("vm", vcpus=4)
    times = completion_times(sim, vm, [1.0, 1.0, 1.0])
    for i in range(3):
        assert times[i] == pytest.approx(1.0)


def test_job_cannot_exceed_one_core(sim):
    host = Host(sim, cores=4)
    vm = host.add_vm("vm", vcpus=4)
    times = completion_times(sim, vm, [2.0])
    assert times[0] == pytest.approx(2.0)  # not 0.5


# ----------------------------------------------------------------------
# consolidation: two VMs on one core
# ----------------------------------------------------------------------
def test_two_vms_share_core_by_equal_shares(sim):
    host = Host(sim, cores=1)
    a = host.add_vm("a")
    b = host.add_vm("b")
    done = {}
    a.execute(1.0).add_callback(lambda ev: done.setdefault("a", sim.now))
    b.execute(1.0).add_callback(lambda ev: done.setdefault("b", sim.now))
    sim.run()
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(2.0)


def test_shares_weight_allocation(sim):
    host = Host(sim, cores=1)
    a = host.add_vm("a", shares=3.0)
    b = host.add_vm("b", shares=1.0)
    done = {}
    a.execute(0.75).add_callback(lambda ev: done.setdefault("a", sim.now))
    b.execute(0.75).add_callback(lambda ev: done.setdefault("b", sim.now))
    sim.run()
    # a gets 0.75 cores, b 0.25 -> a at t=1.0; then b alone: it completed
    # 0.25 work by t=1, remaining 0.5 at full speed -> t=1.5.
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(1.5)


def test_idle_vm_leaves_capacity_to_the_other(sim):
    host = Host(sim, cores=1)
    a = host.add_vm("a")
    host.add_vm("b")  # never runs anything
    done = completion_times(sim, a, [1.0])
    assert done[0] == pytest.approx(1.0)


def test_antagonist_burst_starves_coresident_vm(sim):
    """The paper's consolidation scenario: a burst slows the steady VM."""
    host = Host(sim, cores=1)
    steady = host.add_vm("steady")
    bursty = host.add_vm("bursty")
    done = {}
    steady.execute(1.0).add_callback(lambda ev: done.setdefault("s", sim.now))

    def burst():
        yield 0.5
        for _ in range(4):
            bursty.execute(0.5)

    sim.process(burst())
    sim.run()
    # steady alone [0,0.5] -> 0.5 done. Then it shares 50/50 with the
    # antagonist VM (4 jobs inside bursty share bursty's half).
    # steady's remaining 0.5 at rate 0.5 -> finishes at t=1.5.
    assert done["s"] == pytest.approx(1.5)


# ----------------------------------------------------------------------
# freeze (I/O millibottleneck)
# ----------------------------------------------------------------------
def test_freeze_delays_completion_and_counts_iowait(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    done = {}
    vm.execute(1.0).add_callback(lambda ev: done.setdefault("j", sim.now))

    def flush():
        yield 0.4
        vm.freeze(0.3)

    sim.process(flush())
    sim.run()
    assert done["j"] == pytest.approx(1.3)
    assert vm.iowait == pytest.approx(0.3)


def test_overlapping_freezes_extend_not_stack(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    done = {}
    vm.execute(1.0).add_callback(lambda ev: done.setdefault("j", sim.now))

    def flush():
        yield 0.2
        vm.freeze(0.4)  # until 0.6
        yield 0.2
        vm.freeze(0.1)  # until 0.5 -> no effect
        vm.freeze(0.5)  # until 0.9 -> extends

    sim.process(flush())
    sim.run()
    assert done["j"] == pytest.approx(1.7)  # 1.0 work + 0.7 frozen


def test_freeze_does_not_affect_other_vm(sim):
    host = Host(sim, cores=1)
    a = host.add_vm("a")
    b = host.add_vm("b")
    done = {}
    a.execute(1.0).add_callback(lambda ev: done.setdefault("a", sim.now))
    b.execute(1.0).add_callback(lambda ev: done.setdefault("b", sim.now))
    a.freeze(0.5)
    sim.run()
    # b runs alone at full speed while a is frozen -> b at 1.0;
    # a starts at 0.5... b finished 0.5 of work by then; from 0.5 to 1.0
    # they share; by t=1.0 b has 0.75 -- wait, b finishes at:
    # [0,0.5] b alone rate 1 -> 0.5 done; [0.5,?] share 0.5 each.
    # b needs 0.5 more -> t=1.5; a needs 1.0 at 0.5 -> would be t=2.5,
    # but after b leaves at 1.5 a runs alone: a did 0.5 by then, 0.5 left
    # -> t=2.0.
    assert done["b"] == pytest.approx(1.5)
    assert done["a"] == pytest.approx(2.0)


def test_negative_freeze_raises(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    with pytest.raises(ValueError):
        vm.freeze(-0.1)


def test_job_submitted_during_freeze_waits(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    vm.freeze(1.0)
    done = {}
    vm.execute(0.5).add_callback(lambda ev: done.setdefault("j", sim.now))
    sim.run()
    assert done["j"] == pytest.approx(1.5)


# ----------------------------------------------------------------------
# accounting
# ----------------------------------------------------------------------
def test_consumed_and_busy_accounting(sim):
    host = Host(sim, cores=1)
    a = host.add_vm("a")
    b = host.add_vm("b")
    a.execute(0.6)
    b.execute(0.2)
    sim.run()
    host.settle()
    assert a.consumed == pytest.approx(0.6)
    assert b.consumed == pytest.approx(0.2)
    assert host.busy == pytest.approx(0.8)


def test_utilization_interval_measurement(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")

    def load():
        while True:
            yield vm.execute(0.07)
            yield 0.03  # 70% duty cycle

    sim.process(load())
    sim.run(until=10.0)
    host.settle()
    assert vm.consumed / 10.0 == pytest.approx(0.7, rel=0.02)


def test_effective_tracks_efficiency_model(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm(
        "vm",
        efficiency=ThreadOverheadModel(switch_cost=0.0, gc_cost=0.0, free_threads=0),
    )
    # zero coefficients -> efficiency 1.0 -> effective == consumed
    vm.execute(0.5)
    sim.run()
    host.settle()
    assert vm.effective == pytest.approx(vm.consumed)


def test_overhead_slows_completion_but_not_consumption(sim):
    host = Host(sim, cores=1)
    # 50% efficiency whenever any job runs
    class Half:
        def __call__(self, n):
            return 0.5

    vm = host.add_vm("vm", efficiency=Half())
    done = {}
    vm.execute(1.0).add_callback(lambda ev: done.setdefault("j", sim.now))
    sim.run()
    host.settle()
    assert done["j"] == pytest.approx(2.0)  # work takes twice as long
    assert vm.consumed == pytest.approx(2.0)  # CPU was busy the whole time
    assert vm.effective == pytest.approx(1.0)


def test_jobs_completed_counter(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    for _ in range(5):
        vm.execute(0.1)
    sim.run()
    assert vm.jobs_completed == 5


# ----------------------------------------------------------------------
# efficiency models
# ----------------------------------------------------------------------
def test_perfect_efficiency_is_one():
    model = PerfectEfficiency()
    assert model(1) == 1.0
    assert model(100000) == 1.0


def test_thread_overhead_monotone_decreasing():
    model = ThreadOverheadModel()
    values = [model(n) for n in (1, 64, 100, 500, 1000, 2000)]
    assert values[0] == 1.0  # below the free-thread grace count
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert 0 < values[-1] < 0.6  # 2000 runnable threads hurt badly


def test_thread_overhead_invalid_params():
    with pytest.raises(ValueError):
        ThreadOverheadModel(switch_cost=-1)
    with pytest.raises(ValueError):
        ThreadOverheadModel(free_threads=-1)


# ----------------------------------------------------------------------
# host validation
# ----------------------------------------------------------------------
def test_host_invalid_cores(sim):
    with pytest.raises(ValueError):
        Host(sim, cores=0)


def test_vm_invalid_params(sim):
    host = Host(sim)
    with pytest.raises(ValueError):
        host.add_vm("x", vcpus=0)
    with pytest.raises(ValueError):
        host.add_vm("x", shares=0)


def test_chained_jobs_from_callbacks(sim):
    """Completion callbacks submitting follow-up work (reentrancy)."""
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    finished = []

    def chain(n):
        if n == 0:
            finished.append(sim.now)
            return
        vm.execute(0.1).add_callback(lambda ev: chain(n - 1))

    chain(5)
    sim.run()
    assert finished == [pytest.approx(0.5)]


# ----------------------------------------------------------------------
# ESXi-style CPU limits (the paper's Fig 13 "cpulimit" column)
# ----------------------------------------------------------------------
def test_cpu_limit_caps_allocation_despite_idle_capacity(sim):
    host = Host(sim, cores=4)
    vm = host.add_vm("vm", vcpus=4, limit=1.0)
    times = completion_times(sim, vm, [0.5, 0.5])
    # 1.0 total work at a 1-core cap, despite 4 idle cores
    assert times[0] == pytest.approx(1.0)
    assert times[1] == pytest.approx(1.0)


def test_cpu_limit_below_single_job_rate(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm", limit=0.5)
    times = completion_times(sim, vm, [0.5])
    assert times[0] == pytest.approx(1.0)  # half-speed cap


def test_cpu_limit_validation(sim):
    host = Host(sim, cores=1)
    with pytest.raises(ValueError):
        host.add_vm("vm", limit=0)


def test_cpu_limit_leaves_capacity_for_other_vms(sim):
    host = Host(sim, cores=1)
    capped = host.add_vm("capped", limit=0.25)
    other = host.add_vm("other")
    done = {}
    capped.execute(0.25).add_callback(lambda ev: done.setdefault("c", sim.now))
    other.execute(0.75).add_callback(lambda ev: done.setdefault("o", sim.now))
    sim.run()
    # capped runs at 0.25 cores; the other gets the remaining 0.75
    assert done["c"] == pytest.approx(1.0)
    assert done["o"] == pytest.approx(1.0)
