"""Unit tests for workload generation (repro.workload)."""

import pytest

from repro.apps.rubbos import RubbosApplication
from repro.metrics import RequestLog
from repro.net import NetworkFabric
from repro.sim import Simulator
from repro.workload import (
    BurstModulator,
    ClosedLoopPopulation,
    OpenLoopPoisson,
    ScriptedBurst,
    SteadyModulator,
)

from conftest import tiny_mix


@pytest.fixture
def sim():
    return Simulator(seed=77)


@pytest.fixture
def fabric(sim):
    return NetworkFabric(sim, latency=0.0)


@pytest.fixture
def app():
    return RubbosApplication(tiny_mix())


def instant_server(sim, listener):
    """Replies immediately to everything."""

    def loop():
        while True:
            exchange = yield listener.accept()
            from repro.apps.servlet import Response

            exchange.reply(Response.success({"ok": True}))

    return sim.process(loop())


# ----------------------------------------------------------------------
# closed loop
# ----------------------------------------------------------------------
def test_closed_loop_throughput_matches_littles_law(sim, fabric, app):
    listener = fabric.listener("web", backlog=1024)
    instant_server(sim, listener)
    log = RequestLog()
    ClosedLoopPopulation(sim, fabric, listener, app, log,
                         clients=200, think_mean=2.0).start()
    sim.run(until=60.0)
    # X = N / (Z + R) with R ~ 0 -> 100 req/s
    assert log.throughput(60.0) == pytest.approx(100.0, rel=0.06)


def test_closed_loop_steady_from_t0(sim, fabric, app):
    """The stationary start: no ramp-up overshoot in arrival rate."""
    listener = fabric.listener("web", backlog=4096)
    instant_server(sim, listener)
    log = RequestLog()
    ClosedLoopPopulation(sim, fabric, listener, app, log,
                         clients=500, think_mean=2.0).start()
    sim.run(until=20.0)
    early = len(log.after(0.0).records) - len(log.after(5.0).records)
    late = len(log.after(10.0).records) - len(log.after(15.0).records)
    assert early == pytest.approx(late, rel=0.25)


def test_closed_loop_records_failures(sim, fabric, app):
    listener = fabric.listener("web", backlog=0)  # never accepts
    log = RequestLog()
    ClosedLoopPopulation(sim, fabric, listener, app, log,
                         clients=3, think_mean=1.0).start()
    sim.run(until=30.0)
    assert len(log.failures) >= 3
    record = log.failures[0]
    assert record.failed
    assert record.drops  # every attempt was dropped
    assert record.response_time >= 9.0  # exhausted 3 retransmissions


def test_closed_loop_validates_parameters(sim, fabric, app):
    log = RequestLog()
    listener = fabric.listener("web")
    with pytest.raises(ValueError):
        ClosedLoopPopulation(sim, fabric, listener, app, log, clients=0)
    with pytest.raises(ValueError):
        ClosedLoopPopulation(sim, fabric, listener, app, log, clients=1,
                             think_mean=0)


def test_closed_loop_start_idempotent(sim, fabric, app):
    listener = fabric.listener("web", backlog=64)
    instant_server(sim, listener)
    log = RequestLog()
    population = ClosedLoopPopulation(sim, fabric, listener, app, log,
                                      clients=10, think_mean=1.0)
    population.start()
    population.start()  # no double population
    sim.run(until=10.0)
    assert log.throughput(10.0) == pytest.approx(10.0, rel=0.4)


# ----------------------------------------------------------------------
# open loop
# ----------------------------------------------------------------------
def test_open_loop_rate(sim, fabric, app):
    listener = fabric.listener("web", backlog=4096)
    instant_server(sim, listener)
    log = RequestLog()
    OpenLoopPoisson(sim, fabric, listener, app, log, rate=50.0).start()
    sim.run(until=40.0)
    assert log.throughput(40.0) == pytest.approx(50.0, rel=0.1)


def test_open_loop_invalid_rate(sim, fabric, app):
    with pytest.raises(ValueError):
        OpenLoopPoisson(sim, fabric, fabric.listener("web"), app,
                        RequestLog(), rate=0)


# ----------------------------------------------------------------------
# scripted bursts
# ----------------------------------------------------------------------
def test_scripted_burst_fires_batches_at_times(sim, fabric, app):
    listener = fabric.listener("web", backlog=4096)
    instant_server(sim, listener)
    log = RequestLog()
    burst = ScriptedBurst(sim, fabric, listener, app, log,
                          times=[5.0, 10.0], batch_size=40,
                          operation="ViewStory")
    burst.start()
    sim.run(until=20.0)
    assert len(log.records) == 80
    starts = sorted({round(r.start, 6) for r in log.records})
    assert starts == [5.0, 10.0]
    assert all(r.kind == "ViewStory" for r in log.records)


def test_scripted_burst_periodic_constructor(sim, fabric, app):
    listener = fabric.listener("web", backlog=4096)
    instant_server(sim, listener)
    log = RequestLog()
    ScriptedBurst.periodic(sim, fabric, listener, app, log,
                           period=4.0, until=15.0, batch_size=5).start()
    sim.run(until=20.0)
    starts = sorted({round(r.start, 6) for r in log.records})
    assert starts == [4.0, 8.0, 12.0]


def test_scripted_burst_validates_batch(sim, fabric, app):
    with pytest.raises(ValueError):
        ScriptedBurst(sim, fabric, None, app, RequestLog(), times=[1.0],
                      batch_size=0)


# ----------------------------------------------------------------------
# burst modulation
# ----------------------------------------------------------------------
def test_steady_modulator_multiplier_is_one():
    modulator = SteadyModulator().start()
    assert modulator.think_multiplier() == 1.0


def test_from_index_one_gives_steady(sim):
    assert isinstance(BurstModulator.from_index(sim, 1), SteadyModulator)


def test_from_index_maps_to_sqrt_intensity(sim):
    modulator = BurstModulator.from_index(sim, 100)
    assert modulator.intensity == pytest.approx(10.0)


def test_from_index_rejects_below_one(sim):
    with pytest.raises(ValueError):
        BurstModulator.from_index(sim, 0)


def test_modulator_alternates_states(sim):
    modulator = BurstModulator(sim, intensity=5.0, burst_duration=0.5,
                               normal_duration=2.0).start()
    sim.run(until=60.0)
    states = [state for _t, state in modulator.transitions]
    assert "burst" in states and "normal" in states
    for first, second in zip(states, states[1:]):
        assert first != second  # strict alternation


def test_modulator_multiplier_during_burst(sim):
    modulator = BurstModulator(sim, intensity=4.0)
    assert modulator.think_multiplier() == 1.0
    modulator.in_burst = True
    assert modulator.think_multiplier() == pytest.approx(0.25)


def test_modulator_dwell_times_roughly_exponential(sim):
    modulator = BurstModulator(sim, intensity=2.0, burst_duration=0.5,
                               normal_duration=1.5).start()
    sim.run(until=2000.0)
    burst_spans = []
    transitions = modulator.transitions
    for (t0, s0), (t1, _s1) in zip(transitions, transitions[1:]):
        if s0 == "burst":
            burst_spans.append(t1 - t0)
    mean = sum(burst_spans) / len(burst_spans)
    assert mean == pytest.approx(0.5, rel=0.15)


def test_modulator_validates_parameters(sim):
    with pytest.raises(ValueError):
        BurstModulator(sim, intensity=0.5)
    with pytest.raises(ValueError):
        BurstModulator(sim, intensity=2.0, burst_duration=0)
