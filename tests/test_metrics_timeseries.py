"""Unit tests for TimeSeries (repro.metrics.timeseries)."""

import pytest

from repro.metrics import TimeSeries


def make(pairs):
    ts = TimeSeries("t")
    for t, v in pairs:
        ts.append(t, v)
    return ts


def test_append_and_len():
    ts = make([(0.0, 1), (1.0, 2)])
    assert len(ts) == 2
    assert list(ts) == [(0.0, 1), (1.0, 2)]


def test_append_rejects_time_regression():
    ts = make([(1.0, 1)])
    with pytest.raises(ValueError):
        ts.append(0.5, 2)


def test_append_allows_equal_times():
    ts = make([(1.0, 1)])
    ts.append(1.0, 2)
    assert len(ts) == 2


def test_min_max_mean():
    ts = make([(0.0, 3.0), (1.0, 1.0), (2.0, 5.0)])
    assert ts.max() == 5.0
    assert ts.min() == 1.0
    assert ts.mean() == pytest.approx(3.0)


def test_empty_series_stats():
    ts = TimeSeries()
    assert ts.max() == 0.0
    assert ts.mean() == 0.0
    assert ts.value_at(1.0) is None


def test_value_at_stairstep():
    ts = make([(1.0, 10), (2.0, 20), (3.0, 30)])
    assert ts.value_at(0.5) is None
    assert ts.value_at(1.0) == 10
    assert ts.value_at(2.7) == 20
    assert ts.value_at(9.9) == 30


def test_intervals_above_basic():
    ts = make([(0.0, 0.1), (1.0, 0.99), (2.0, 0.98), (3.0, 0.2), (4.0, 0.97),
               (5.0, 0.1)])
    assert ts.intervals_above(0.95) == [(1.0, 3.0), (4.0, 5.0)]


def test_intervals_above_min_duration_filters_blips():
    ts = make([(0.0, 0.1), (1.0, 0.99), (1.05, 0.1), (2.0, 0.99), (2.5, 0.99),
               (3.0, 0.1)])
    assert ts.intervals_above(0.95, min_duration=0.5) == [(2.0, 3.0)]


def test_intervals_above_open_at_end():
    ts = make([(0.0, 0.1), (1.0, 0.99), (2.0, 0.99)])
    assert ts.intervals_above(0.95) == [(1.0, 2.0)]


def test_slice():
    ts = make([(0.0, 1), (1.0, 2), (2.0, 3), (3.0, 4)])
    sliced = ts.slice(1.0, 3.0)
    assert list(sliced) == [(1.0, 2), (2.0, 3)]


def test_as_arrays():
    ts = make([(0.0, 1), (1.0, 2)])
    times, values = ts.as_arrays()
    assert times.tolist() == [0.0, 1.0]
    assert values.tolist() == [1, 2]
