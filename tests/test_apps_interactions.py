"""Tests for the full RUBBoS interaction catalog
(repro.apps.interactions)."""

import pytest

from repro.apps import (
    RubbosApplication,
    browse_only_mix,
    calibrated,
    full_catalog,
    read_write_mix,
)
from repro.apps.rubbos import APP_TIER, DB_TIER
from repro.sim import Simulator
from repro.units import ms


def test_catalog_has_every_interaction():
    catalog = full_catalog()
    assert len(catalog) == 21
    for name in ("StoriesOfTheDay", "ViewStory", "SearchInComments",
                 "StoreStory", "AcceptStory", "StaticContent"):
        assert name in catalog


def test_catalog_specs_are_internally_consistent():
    for spec in full_catalog(stochastic=False).values():
        if spec.app_stages:
            assert len(spec.db_queries) == len(spec.app_stages) - 1
        else:
            assert spec.is_static


def test_browse_mix_is_read_only():
    names = {spec.name for spec in browse_only_mix()}
    assert len(names) == 11
    assert not any(name.startswith(("Submit", "Store")) for name in names)


def test_read_write_mix_adds_write_path():
    names = {spec.name for spec in read_write_mix()}
    assert "StoreStory" in names and "StoreComment" in names
    assert len(names) == 21


def test_write_interactions_are_a_small_fraction():
    mix = read_write_mix()
    total = sum(spec.weight for spec in mix)
    writes = sum(
        spec.weight for spec in mix
        if spec.name.startswith(("Submit", "Store", "Moderate", "Register",
                                 "Review", "Accept"))
    )
    assert writes / total < 0.20


def test_calibration_hits_the_target():
    for mix in (browse_only_mix(), read_write_mix()):
        app = RubbosApplication(calibrated(mix))
        assert app.expected_work(APP_TIER) == pytest.approx(ms(0.77))
        # the DB stays below the app tier at paper workloads
        assert app.expected_work(DB_TIER) < ms(0.77) * 1.05


def test_calibration_custom_target():
    app = RubbosApplication(calibrated(browse_only_mix(), app_work=ms(1.5)))
    assert app.expected_work(APP_TIER) == pytest.approx(ms(1.5))


def test_calibration_preserves_ratios():
    raw = browse_only_mix(stochastic=False)
    raw_work = RubbosApplication(raw).expected_work(APP_TIER)
    scaled = calibrated(raw, app_work=2 * raw_work)  # exactly 2x
    for before, after in zip(raw, scaled):
        assert after.web_work == pytest.approx(2 * before.web_work)
        for b, a in zip(before.db_queries, after.db_queries):
            assert a == pytest.approx(2 * b)


def test_calibration_rejects_static_only_mix():
    static_only = [full_catalog(stochastic=False)["StaticContent"]]
    with pytest.raises(ValueError):
        calibrated(static_only)


def test_full_mix_runs_through_a_system():
    """Every interaction's servlet actually executes on the 3-tier
    system without error."""
    from repro.core import Scenario
    from repro.topology import SystemConfig

    result = Scenario(
        SystemConfig(nx=0, interaction_specs=calibrated(read_write_mix()),
                     seed=3),
        clients=300, think_mean=1.0, duration=12.0, warmup=2.0,
    ).run()
    summary = result.summary()
    assert summary["failed"] == 0
    assert summary["dropped_packets"] == 0
    kinds = {record.kind for record in result.log.records}
    assert len(kinds) >= 15  # the long tail of rare interactions appears


def test_sampling_matches_weights():
    app = RubbosApplication(browse_only_mix())
    rng = Simulator(seed=8).fork_rng("x")
    counts = {}
    n = 30000
    for _ in range(n):
        name = app.sample(rng).name
        counts[name] = counts.get(name, 0) + 1
    total_weight = sum(s.weight for s in app.specs)
    for spec in app.specs:
        if spec.weight / total_weight > 0.05:
            assert counts[spec.name] / n == pytest.approx(
                spec.weight / total_weight, rel=0.15
            )
