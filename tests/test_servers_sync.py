"""Unit tests for the synchronous RPC server (repro.servers.sync_server)."""

import pytest

from repro.apps.servlet import Call, Compute, Request
from repro.cpu import Host
from repro.net import NetworkFabric
from repro.servers import SyncServer
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=17)


@pytest.fixture
def fabric(sim):
    return NetworkFabric(sim, latency=0.0, rto=3.0, max_retransmits=3)


def make_vm(sim, name="vm", cores=1):
    return Host(sim, cores=cores, name=f"{name}-host").add_vm(name)


def compute_handler(work):
    def handler(ctx, request):
        yield Compute(work)
        return {"served": request.operation}

    return handler


def send(sim, fabric, listener, operation="op", kind="K", work_hint=None):
    """Send one request; returns (exchange, outcomes list appended to)."""
    outcomes = []

    def client():
        request = Request(kind, operation, sim.now, work_hint=work_hint)
        exchange = fabric.send(listener, request)
        try:
            response = yield exchange.response
            outcomes.append(response)
        except Exception as exc:  # ConnectionTimeout
            outcomes.append(exc)

    sim.process(client())
    return outcomes


# ----------------------------------------------------------------------
# basics
# ----------------------------------------------------------------------
def test_serves_single_request(sim, fabric):
    server = SyncServer(sim, fabric, "srv", make_vm(sim), compute_handler(0.01),
                        threads=2, backlog=4)
    outcomes = send(sim, fabric, server.listener, "hello")
    sim.run()
    assert outcomes[0].ok
    assert outcomes[0].value == {"served": "hello"}
    assert server.stats.completed == 1


def test_thread_pool_limits_concurrency(sim, fabric):
    """2 threads, 4 one-second requests: finish in two waves."""
    server = SyncServer(sim, fabric, "srv", make_vm(sim, cores=4),
                        compute_handler(1.0), threads=2, backlog=8)
    all_outcomes = [send(sim, fabric, server.listener, f"r{i}")
                    for i in range(4)]
    sim.run(until=0.5)
    assert server.busy_threads == 2
    assert server.listener.backlog_length == 2
    sim.run()
    assert all(o and o[0].ok for o in all_outcomes)


def test_max_sys_q_depth_is_threads_plus_backlog(sim, fabric):
    server = SyncServer(sim, fabric, "srv", make_vm(sim), compute_handler(0.1),
                        threads=150, backlog=128)
    assert server.max_sys_q_depth == 278  # the paper's Apache number


def test_queue_depth_counts_busy_plus_backlog(sim, fabric):
    server = SyncServer(sim, fabric, "srv", make_vm(sim), compute_handler(1.0),
                        threads=2, backlog=8)
    for i in range(5):
        send(sim, fabric, server.listener, f"r{i}")
    sim.run(until=0.1)
    assert server.queue_depth() == 5  # 2 busy + 3 queued


def test_overflow_drops_packets(sim, fabric):
    server = SyncServer(sim, fabric, "srv", make_vm(sim), compute_handler(10.0),
                        threads=1, backlog=2)
    for i in range(5):
        send(sim, fabric, server.listener, f"r{i}")
    sim.run(until=1.0)
    # 1 executing + 2 in backlog; 2 dropped (and retransmitted later)
    assert server.listener.drops == 2


def test_invalid_thread_count(sim, fabric):
    with pytest.raises(ValueError):
        SyncServer(sim, fabric, "srv", make_vm(sim), compute_handler(0.1),
                   threads=0)


# ----------------------------------------------------------------------
# blocking RPC semantics — the cross-tier dependency
# ----------------------------------------------------------------------
def relay_handler(target):
    def handler(ctx, request):
        result = yield Call(target, request.operation)
        return result

    return handler


def test_thread_blocks_during_downstream_call(sim, fabric):
    """Upstream thread is held while downstream works: with one thread,
    two instant-at-upstream requests serialize on the downstream wait."""
    upstream_vm = make_vm(sim, "up")
    downstream_vm = make_vm(sim, "down", cores=4)
    downstream = SyncServer(sim, fabric, "down", downstream_vm,
                            compute_handler(1.0), threads=4, backlog=8)
    upstream = SyncServer(sim, fabric, "up", upstream_vm,
                          relay_handler("down"), threads=1, backlog=8)
    upstream.connect("down", downstream.listener)
    a = send(sim, fabric, upstream.listener, "a")
    b = send(sim, fabric, upstream.listener, "b")
    sim.run(until=1.5)
    assert a and a[0].ok
    assert not b  # still waiting: the single thread was held for 'a'
    sim.run()
    assert b and b[0].ok


def test_upstream_ctqo_mechanism(sim, fabric):
    """A stalled downstream fills the upstream server to MaxSysQDepth
    and forces upstream drops — the paper's Fig 3 in miniature."""
    upstream_vm = make_vm(sim, "up")
    downstream_vm = make_vm(sim, "down")
    downstream = SyncServer(sim, fabric, "down", downstream_vm,
                            compute_handler(0.001), threads=2, backlog=2)
    upstream = SyncServer(sim, fabric, "up", upstream_vm,
                          relay_handler("down"), threads=3, backlog=2)
    upstream.connect("down", downstream.listener)
    downstream_vm.freeze(5.0)  # millibottleneck in the downstream tier
    for i in range(10):
        send(sim, fabric, upstream.listener, f"r{i}")
    sim.run(until=1.0)
    # upstream: 3 threads blocked + 2 backlog = MaxSysQDepth reached
    assert upstream.queue_depth() == upstream.max_sys_q_depth == 5
    assert upstream.listener.drops > 0
    # downstream absorbed only what its own queues could hold
    assert downstream.queue_depth() <= downstream.max_sys_q_depth


def test_downstream_error_propagates_as_failure_reply(sim, fabric):
    upstream = SyncServer(sim, fabric, "up", make_vm(sim, "up"),
                          relay_handler("nowhere"), threads=1, backlog=4)
    outcomes = send(sim, fabric, upstream.listener, "x")
    sim.run()
    assert outcomes[0].ok is False
    assert "no route" in outcomes[0].error
    assert upstream.stats.failed == 1


def test_connection_timeout_becomes_error_reply(sim, fabric):
    """Downstream never accepts: after all retransmissions the upstream
    thread unblocks with an error instead of hanging forever."""
    dead = fabric.listener("dead", backlog=0)
    upstream = SyncServer(sim, fabric, "up", make_vm(sim, "up"),
                          relay_handler("dead"), threads=1, backlog=4)
    upstream.connect("dead", dead)
    outcomes = send(sim, fabric, upstream.listener, "x")
    sim.run(until=30.0)
    assert outcomes and not outcomes[0].ok
    assert upstream.stats.downstream_failures == 1
    assert upstream.busy_threads == 0  # thread was released


# ----------------------------------------------------------------------
# connection pool (Tomcat -> MySQL JDBC pool of 50)
# ----------------------------------------------------------------------
def test_connection_pool_caps_outstanding_calls(sim, fabric):
    downstream_vm = make_vm(sim, "down", cores=8)
    downstream = SyncServer(sim, fabric, "down", downstream_vm,
                            compute_handler(1.0), threads=8, backlog=8)
    upstream = SyncServer(sim, fabric, "up", make_vm(sim, "up"),
                          relay_handler("down"), threads=8, backlog=8)
    upstream.connect("down", downstream.listener, pool_size=2)
    for i in range(6):
        send(sim, fabric, upstream.listener, f"r{i}")
    sim.run(until=0.5)
    # only pool_size requests ever reach the downstream at once
    assert downstream.queue_depth() == 2
    assert upstream.busy_threads == 6  # the rest block inside upstream
    sim.run()
    assert upstream.stats.completed == 6


# ----------------------------------------------------------------------
# Apache's second process
# ----------------------------------------------------------------------
def test_second_process_spawns_under_sustained_saturation(sim, fabric):
    server = SyncServer(sim, fabric, "apache", make_vm(sim),
                        compute_handler(10.0), threads=2, backlog=2,
                        spawn_extra_process=True, spawn_after=0.3,
                        max_processes=2)
    for i in range(8):
        send(sim, fabric, server.listener, f"r{i}")
    assert server.max_sys_q_depth == 4
    sim.run(until=2.0)
    assert server.processes == 2
    assert server.thread_capacity == 4
    assert server.max_sys_q_depth == 6  # 2+2 threads + 2 backlog


def test_no_spawn_when_not_saturated(sim, fabric):
    server = SyncServer(sim, fabric, "apache", make_vm(sim),
                        compute_handler(0.001), threads=2, backlog=2,
                        spawn_extra_process=True, spawn_after=0.3)
    send(sim, fabric, server.listener, "only-one")
    sim.run(until=2.0)
    assert server.processes == 1


def test_spawn_respects_max_processes(sim, fabric):
    server = SyncServer(sim, fabric, "apache", make_vm(sim),
                        compute_handler(100.0), threads=1, backlog=1,
                        spawn_extra_process=True, spawn_after=0.1,
                        max_processes=3)
    for i in range(12):
        send(sim, fabric, server.listener, f"r{i}")
    sim.run(until=5.0)
    assert server.processes == 3
    assert server.thread_capacity == 3
