"""Unit tests for per-request CTQO attribution (repro.metrics.attribution)."""

import pytest

from repro.metrics import RequestLog, RequestRecord
from repro.metrics.attribution import AttributionReport, CtqoAttributor
from repro.metrics.detector import Episode

TIERS = ["apache", "tomcat", "mysql"]


def make_log(records):
    log = RequestLog()
    for record in records:
        log.add(record)
    return log


def vlrt_record(request_id, start, drop_site="apache", drop_at=None,
                failed=False):
    drops = []
    if drop_site is not None:
        drops = [(drop_at if drop_at is not None else start, drop_site)]
    return RequestRecord(
        request_id, "ViewStory", start, start + 3.01,
        attempts=2, drops=drops, failed=failed,
    )


def overflow(start, end, resource="apache"):
    return Episode(resource, "overflow", start, end, 128, 125.5)


def millibottleneck(start, end, resource="sysbursty-mysql"):
    return Episode(resource, "cpu", start, end, 1.0, 0.95)


def test_complete_chain_upstream():
    log = make_log([vlrt_record(1, 10.0, drop_site="apache", drop_at=10.2)])
    attributor = CtqoAttributor(TIERS, vm_of={"sysbursty-mysql": "tomcat"})
    report = attributor.attribute(
        log,
        {"apache": [overflow(10.1, 10.5)]},
        [millibottleneck(10.0, 10.8)],
    )
    assert report.coverage == 1.0
    chain = report.chains[0]
    assert chain.complete
    assert chain.direction == "upstream"    # drop at apache, mb at tomcat
    assert chain.overflow.start == pytest.approx(10.1)
    assert "upstream CTQO" in chain.describe()


def test_downstream_direction_when_drop_below_bottleneck():
    log = make_log([vlrt_record(1, 10.0, drop_site="mysql", drop_at=10.2)])
    attributor = CtqoAttributor(TIERS, vm_of={"sysbursty-mysql": "tomcat"})
    report = attributor.attribute(
        log,
        {"mysql": [overflow(10.1, 10.5, resource="mysql")]},
        [millibottleneck(10.0, 10.8)],
    )
    assert report.chains[0].direction == "downstream"


def test_drop_free_vlrt_is_incomplete():
    log = make_log([vlrt_record(1, 10.0, drop_site=None)])
    attributor = CtqoAttributor(TIERS)
    report = attributor.attribute(log, {}, [])
    assert report.coverage == 0.0
    chain = report.chains[0]
    assert chain.drop_site is None
    assert "no packet drop recorded" in chain.describe()


def test_sampling_tolerance_matches_late_episode():
    # the sampler first saw the full backlog 40 ms after the drop
    log = make_log([vlrt_record(1, 10.0, drop_at=10.00)])
    attributor = CtqoAttributor(TIERS, tolerance=0.05)
    report = attributor.attribute(
        log,
        {"apache": [overflow(10.04, 10.5)]},
        [millibottleneck(9.9, 10.8)],
    )
    assert report.chains[0].overflow is not None
    strict = CtqoAttributor(TIERS, tolerance=0.0).attribute(
        log,
        {"apache": [overflow(10.04, 10.5)]},
        [millibottleneck(9.9, 10.8)],
    )
    assert strict.chains[0].overflow is None


def test_recently_ended_millibottleneck_owns_draining_drops():
    # drop happens 0.3 s after the bottleneck ended (queue still full)
    log = make_log([vlrt_record(1, 10.0, drop_at=11.1)])
    attributor = CtqoAttributor(TIERS, vm_of={"sysbursty-mysql": "tomcat"},
                                window=1.0)
    mbs = [millibottleneck(10.0, 10.8)]
    report = attributor.attribute(log, {"apache": [overflow(10.1, 11.3)]}, mbs)
    assert report.chains[0].millibottleneck is mbs[0]
    outside = CtqoAttributor(TIERS, window=0.1).attribute(
        log, {"apache": [overflow(10.1, 11.3)]}, mbs
    )
    assert outside.chains[0].millibottleneck is None


def test_earliest_active_millibottleneck_wins():
    # the victim tier saturates after its antagonist; the root cause is
    # the episode that started first
    log = make_log([vlrt_record(1, 10.0, drop_at=10.4)])
    attributor = CtqoAttributor(TIERS, vm_of={"sysbursty-mysql": "tomcat"})
    root = millibottleneck(10.0, 10.8)
    secondary = millibottleneck(10.2, 10.9, resource="tomcat")
    report = attributor.attribute(
        log, {"apache": [overflow(10.1, 10.6)]}, [secondary, root]
    )
    assert report.chains[0].millibottleneck is root


def test_off_chain_resource_yields_no_direction():
    log = make_log([vlrt_record(1, 10.0, drop_at=10.2)])
    attributor = CtqoAttributor(TIERS)   # no vm_of mapping
    report = attributor.attribute(
        log,
        {"apache": [overflow(10.1, 10.5)]},
        [millibottleneck(10.0, 10.8, resource="unrelated-antagonist")],
    )
    chain = report.chains[0]
    assert chain.millibottleneck is not None
    assert chain.direction is None


def test_vm_suffix_strip_fallback():
    attributor = CtqoAttributor(TIERS)
    assert attributor.server_for_vm("tomcat-vm") == "tomcat"
    assert attributor.server_for_vm("tomcat") == "tomcat"
    assert attributor.classify_direction("tomcat-vm", "apache") == "upstream"
    assert attributor.classify_direction("tomcat-vm", "mysql") == "downstream"


def test_failed_and_dropped_requests_are_included_once():
    failed = vlrt_record(1, 10.0, drop_at=10.2, failed=True)
    log = make_log([failed])
    report = CtqoAttributor(TIERS).attribute(log, {}, [])
    assert len(report.chains) == 1        # vlrt() and dropped_requests()
    assert report.chains[0].failed


def test_single_node_tier_order_is_valid():
    # a one-server graph attributes to an empty-but-valid report
    # instead of crashing `repro diagnose`
    attributor = CtqoAttributor(["apache"])
    report = attributor.attribute(make_log([]), {}, [])
    assert len(report) == 0
    assert report.coverage == 1.0
    assert attributor.classify_direction("apache-vm", "apache") == "downstream"


def test_bad_edge_indices_rejected():
    with pytest.raises(ValueError):
        CtqoAttributor(TIERS, edges=[(0, 5)])


def test_report_aggregates_and_render():
    chains_log = make_log([
        vlrt_record(1, 10.0, drop_at=10.2),
        vlrt_record(2, 10.1, drop_at=10.25),
        vlrt_record(3, 20.0, drop_site=None),
    ])
    attributor = CtqoAttributor(TIERS, vm_of={"sysbursty-mysql": "tomcat"})
    report = attributor.attribute(
        chains_log,
        {"apache": [overflow(10.1, 10.5)]},
        [millibottleneck(10.0, 10.8)],
    )
    assert len(report) == 3
    assert report.coverage == pytest.approx(2 / 3)
    assert report.directions() == {"upstream": 2}
    assert report.drop_sites() == {"apache": 2}
    grouped = report.by_millibottleneck()
    assert len(grouped) == 1 and len(grouped[0][1]) == 2
    text = report.render()
    assert "2/3 tail requests fully attributed" in text
    assert "66.7 % coverage" in text
    assert "unattributed: 1" in text


def test_empty_report_renders_and_covers():
    report = AttributionReport([], TIERS)
    assert report.coverage == 1.0
    assert "no VLRT or dropped requests" in report.render()
