"""Determinism regression tests.

Every registered experiment must produce the same record from the same
seed across two fresh runs — the classic way parallelism silently breaks
DES reproducibility is a component drawing from the process-global
``random`` module (or any other hidden shared state), which these tests
catch.  Also pins the independence of :meth:`Simulator.fork_rng` streams
and the builders' seed-propagation validation.
"""

import random

import pytest

from repro.experiments.runner import REGISTRY, JobConfig, execute_job
from repro.sim import Simulator

#: per-experiment tiny scales: large enough to exceed each experiment's
#: warmup and reach its first injected millibottleneck, small enough for
#: a test suite (the full-scale sweep is `repro run-all`)
TINY = {
    "fig01": dict(duration=12.0, params={"workloads": [4000]}),
    "fig02": dict(duration=12.0, params={}),
    "fig03": dict(duration=12.0, params={"clients": 3000}),
    "fig05": dict(duration=12.0, params={"clients": 3000}),
    "fig07": dict(duration=12.0, params={"clients": 3000}),
    "fig08": dict(duration=12.0, params={"clients": 3000}),
    "fig09": dict(duration=12.0, params={"clients": 3000}),
    "fig10": dict(duration=12.0, params={"clients": 3000}),
    "fig11": dict(duration=12.0, params={"clients": 3000}),
    "fig12": dict(duration=7.0, params={"levels": [100]}),
    "headline": dict(duration=12.0, params={"workloads": [4000]}),
    "deep_chain": dict(duration=14.0, params={"depths": [3]}),
    "replication": dict(duration=12.0, params={"replicas": [1]}),
    "validation": dict(duration=10.0, params={"workloads": [2000]}),
    "cause_variety": dict(duration=12.0, params={"causes": ["cpu"]}),
    "nx_sweep": dict(duration=10.0, params={"nx": 1, "clients": 3000}),
    "policy_matrix": dict(
        duration=12.0, params={"variants": ["shed_web"], "clients": 3000},
    ),
    # 17 s fits one full burst triple (bases 8/11/14 + 2.2 s stall), so
    # the hedging and balancing paths actually fire under the stall
    "scaleout": dict(
        duration=17.0, params={"variants": ["rpc_hedged"], "clients": 2000},
    ),
    # 8 s reaches the 4 s leaf stall; sync + quorum cover both gather
    # drivers (thread barrier and first-K-of-N shedding)
    "fanout": dict(
        duration=8.0,
        params={"clients": 2000, "fanouts": [4, 8],
                "variants": ["sync", "quorum"]},
    ),
    # 12 s reaches both bulk invalidations (t=5, t=9) and three flush
    # bursts; storm + bufferbloat cover both families (cache herd with
    # invalidation RNG, storage write-back coin flips)
    "cache_storage": dict(
        duration=12.0,
        params={"clients": 2100, "variants": ["storm", "bufferbloat"]},
    ),
}


def _tiny_job(name, seed=42):
    scale = TINY[name]
    return JobConfig(name=name, seed=seed, duration=scale["duration"],
                     params=dict(scale["params"]))


def test_tiny_scales_cover_the_whole_registry():
    assert set(TINY) == set(REGISTRY)


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_experiment_record_is_reproducible_from_seed(name):
    """Two fresh Simulator instances, same seed -> identical record."""
    first = execute_job(_tiny_job(name))
    # perturb the process-global RNG between runs: a hidden dependence
    # on it would now change the second record
    random.random()
    second = execute_job(_tiny_job(name))
    assert first == second, f"{name} is not reproducible from its seed"


@pytest.mark.slow
def test_different_seeds_change_the_record():
    """The seed must actually reach the simulation (no frozen streams)."""
    a = execute_job(_tiny_job("validation", seed=1))
    b = execute_job(_tiny_job("validation", seed=2))
    assert a["payload"] != b["payload"]


# ----------------------------------------------------------------------
# fork_rng stream independence (the substrate the contract rests on)
# ----------------------------------------------------------------------
def test_fork_rng_streams_are_independent_of_each_other():
    sim = Simulator(seed=42)
    stream = sim.fork_rng("workload")
    baseline = [stream.random() for _ in range(5)]

    sim2 = Simulator(seed=42)
    sim2.fork_rng("gc")          # an extra consumer...
    sim2.rng.random()            # ...and draws from the simulator's own rng
    fork = sim2.fork_rng("workload")
    assert [fork.random() for _ in range(5)] == baseline


def test_fork_rng_streams_differ_by_label_and_seed():
    sim = Simulator(seed=42)
    assert (sim.fork_rng("a").random() != sim.fork_rng("b").random())
    other = Simulator(seed=43)
    assert (sim.fork_rng("a").random() != other.fork_rng("a").random())


def test_fork_rng_is_unaffected_by_global_random_state():
    sim = Simulator(seed=42)
    expected = sim.fork_rng("workload").random()
    random.seed(999)
    sim2 = Simulator(seed=42)
    assert sim2.fork_rng("workload").random() == expected


# ----------------------------------------------------------------------
# builder seed-propagation validation
# ----------------------------------------------------------------------
def test_build_replicated_rejects_mismatched_sim_seed():
    from repro.experiments.replication import build_replicated
    from repro.topology.configs import SystemConfig

    with pytest.raises(ValueError, match="seed"):
        build_replicated(SystemConfig(nx=0, seed=1), sim=Simulator(seed=2))


def test_build_system_rejects_mismatched_sim_seed():
    from repro.topology import SystemConfig, build_system

    with pytest.raises(ValueError, match="seed"):
        build_system(SystemConfig(seed=1), sim=Simulator(seed=2))


def test_build_chain_rejects_mismatched_sim_seed():
    from repro.topology.chain import build_chain, uniform_chain

    with pytest.raises(ValueError, match="seed"):
        build_chain(uniform_chain(3), sim=Simulator(seed=2), seed=1)


def test_build_consolidated_pair_rejects_mismatched_sim_seed():
    from repro.topology import SystemConfig, build_consolidated_pair

    with pytest.raises(ValueError, match="seed"):
        build_consolidated_pair(SystemConfig(seed=1), sim=Simulator(seed=2))


def test_build_replicated_accepts_matching_sim_seed():
    from repro.experiments.replication import build_replicated
    from repro.topology.configs import SystemConfig

    system = build_replicated(SystemConfig(nx=0, seed=5),
                              sim=Simulator(seed=5))
    assert system["sim"].seed == 5
