"""Array-backed open-loop arrivals (repro.workload.openloop).

The determinism contract is the whole point of this module: arrival
streams are pure functions of ``(distribution, rate, n, seed, params)``
and the batch size is invisible — byte-identical output for every
chunking.  These tests pin that contract, the distributions' first and
tail moments, the seed derivation, and the scheduling engine's exact
``max_requests`` budget (a regression test for the off-by-one where the
last batch over-drew by the number of spawned-but-not-started
processes).
"""

import numpy as np
import pytest

from repro.apps.rubbos import RubbosApplication
from repro.metrics import RequestLog
from repro.net import NetworkFabric
from repro.sim import Simulator
from repro.workload import ArrayOpenLoop, arrival_times, numpy_seed_for
from repro.workload.openloop import DISTRIBUTIONS, _draw_gaps

from conftest import tiny_mix


@pytest.fixture
def sim():
    return Simulator(seed=77)


@pytest.fixture
def fabric(sim):
    return NetworkFabric(sim, latency=0.0)


@pytest.fixture
def app():
    return RubbosApplication(tiny_mix())


def instant_server(sim, listener):
    """Replies immediately to everything."""

    def loop():
        while True:
            exchange = yield listener.accept()
            from repro.apps.servlet import Response

            exchange.reply(Response.success({"ok": True}))

    return sim.process(loop())


# ----------------------------------------------------------------------
# pure arrival streams
# ----------------------------------------------------------------------
@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_arrival_times_batch_invariant(distribution):
    """Same stream, byte for byte, whatever the chunking."""
    reference = arrival_times(distribution, 200.0, 5000, seed=9,
                              batch_size=5000)
    for batch_size in (1, 7, 256, 1024, 8192):
        chunked = arrival_times(distribution, 200.0, 5000, seed=9,
                                batch_size=batch_size)
        assert chunked.tobytes() == reference.tobytes(), batch_size


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_arrival_times_seed_determinism(distribution):
    a = arrival_times(distribution, 50.0, 2000, seed=1234)
    b = arrival_times(distribution, 50.0, 2000, seed=1234)
    c = arrival_times(distribution, 50.0, 2000, seed=1235)
    assert a.tobytes() == b.tobytes()
    assert a.tobytes() != c.tobytes()


def test_arrival_times_matches_single_draw_reference():
    """The batched fold equals one straight cumsum of one big draw."""
    rng = np.random.default_rng(31)
    expected = np.cumsum(rng.exponential(1.0 / 100.0, 3000))
    got = arrival_times("poisson", 100.0, 3000, seed=31, batch_size=128)
    assert got.tobytes() == expected.tobytes()


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_arrival_streams_increase(distribution):
    times = arrival_times(distribution, 1000.0, 5000, seed=5)
    assert times.shape == (5000,)
    assert times[0] > 0.0
    assert np.all(np.diff(times) > 0)


def test_mean_rate_all_distributions():
    """Every law is normalized to a mean gap of 1/rate."""
    n, rate = 200_000, 100.0
    rng = np.random.default_rng(7)
    for distribution, tolerance in (("poisson", 0.02), ("pareto", 0.05),
                                    ("lognormal", 0.02)):
        gaps = _draw_gaps(rng, distribution, rate, n, 2.5, 1.0)
        assert float(gaps.mean()) == pytest.approx(1.0 / rate,
                                                   rel=tolerance), distribution


def test_pareto_is_heavier_tailed_than_poisson():
    n, rate = 200_000, 100.0
    exp_gaps = _draw_gaps(np.random.default_rng(3), "poisson", rate, n,
                          2.5, 1.0)
    par_gaps = _draw_gaps(np.random.default_rng(3), "pareto", rate, n,
                          2.5, 1.0)
    # survival beyond 10x the mean: e^-10 ~ 5e-5 for exponential vs
    # a power law for Lomax(2.5)
    threshold = 10.0 / rate
    assert (par_gaps > threshold).mean() > 4 * (exp_gaps > threshold).mean()
    assert par_gaps.max() > exp_gaps.max()


def test_lognormal_median_below_mean():
    n, rate, sigma = 200_000, 100.0, 1.0
    gaps = _draw_gaps(np.random.default_rng(11), "lognormal", rate, n,
                      2.5, sigma)
    # median = exp(mu) = (1/rate) * exp(-sigma^2/2)
    expected_median = (1.0 / rate) * np.exp(-0.5 * sigma * sigma)
    assert float(np.median(gaps)) == pytest.approx(expected_median, rel=0.03)
    assert float(np.median(gaps)) < float(gaps.mean())


def test_numpy_seed_for_is_stable_and_distinct():
    # sha256-derived: pinned literal guards cross-version reproducibility
    assert numpy_seed_for(42, "open-loop-array") == numpy_seed_for(
        42, "open-loop-array")
    assert numpy_seed_for(42, "a") != numpy_seed_for(42, "b")
    assert numpy_seed_for(1, "a") != numpy_seed_for(2, "a")
    assert numpy_seed_for(42, "open-loop-array") == 7062403191444709309


def test_arrival_times_validation():
    with pytest.raises(ValueError):
        arrival_times("weibull", 100.0, 10, seed=1)
    with pytest.raises(ValueError):
        arrival_times("poisson", 0.0, 10, seed=1)
    with pytest.raises(ValueError):
        arrival_times("pareto", 100.0, 10, seed=1, shape=1.0)
    with pytest.raises(ValueError):
        arrival_times("lognormal", 100.0, 10, seed=1, sigma=0.0)
    with pytest.raises(ValueError):
        arrival_times("poisson", 100.0, -1, seed=1)
    with pytest.raises(ValueError):
        arrival_times("poisson", 100.0, 10, seed=1, batch_size=0)
    assert arrival_times("poisson", 100.0, 0, seed=1).shape == (0,)


# ----------------------------------------------------------------------
# the scheduling engine
# ----------------------------------------------------------------------
def test_engine_issues_exactly_max_requests(sim, fabric, app):
    """The request budget is exact even when it falls mid-batch (the
    spawned-but-not-started lag must not over-draw the final batch)."""
    listener = fabric.listener("web", backlog=4096)
    instant_server(sim, listener)
    log = RequestLog()
    ArrayOpenLoop(sim, fabric, listener, app, log, rate=500.0,
                  max_requests=100, batch_size=64).start()
    sim.run(until=10.0)
    assert len(log.records) == 100


def test_engine_respects_horizon(sim, fabric, app):
    listener = fabric.listener("web", backlog=4096)
    instant_server(sim, listener)
    log = RequestLog()
    ArrayOpenLoop(sim, fabric, listener, app, log, rate=200.0,
                  horizon=5.0).start()
    sim.run(until=20.0)
    assert len(log.records) == pytest.approx(1000, rel=0.15)
    assert all(r.start < 5.0 for r in log.records)


def test_engine_batch_size_invisible_end_to_end(app):
    """Two sims differing only in batch_size produce identical logs."""
    starts = []
    for batch_size in (16, 4096):
        sim = Simulator(seed=77)
        fabric = NetworkFabric(sim, latency=0.0)
        listener = fabric.listener("web", backlog=4096)
        instant_server(sim, listener)
        log = RequestLog()
        ArrayOpenLoop(sim, fabric, listener, app, log, rate=300.0,
                      max_requests=400, batch_size=batch_size).start()
        sim.run(until=10.0)
        starts.append([r.start for r in log.records])
    assert starts[0] == starts[1]
    assert len(starts[0]) == 400


def test_engine_throughput_matches_rate(sim, fabric, app):
    listener = fabric.listener("web", backlog=4096)
    instant_server(sim, listener)
    log = RequestLog()
    ArrayOpenLoop(sim, fabric, listener, app, log, rate=100.0).start()
    sim.run(until=40.0)
    assert log.throughput(40.0) == pytest.approx(100.0, rel=0.06)


def test_engine_feeds_streaming_log(sim, fabric, app):
    log = RequestLog(streaming=True)
    log.set_warmup(0.0)
    listener = fabric.listener("web", backlog=4096)
    instant_server(sim, listener)
    ArrayOpenLoop(sim, fabric, listener, app, log, rate=400.0,
                  max_requests=1000).start()
    sim.run(until=10.0)
    assert len(log) == 1000
    assert log.stats.completed == 1000
    assert not log.records  # everything fast, everything folded
    assert log.percentile(99) < 0.1


def test_engine_start_idempotent(sim, fabric, app):
    listener = fabric.listener("web", backlog=4096)
    instant_server(sim, listener)
    log = RequestLog()
    engine = ArrayOpenLoop(sim, fabric, listener, app, log, rate=100.0,
                           max_requests=50)
    engine.start()
    engine.start()  # no second arrival process
    sim.run(until=10.0)
    assert len(log.records) == 50


def test_engine_validates_parameters(sim, fabric, app):
    listener = fabric.listener("web")
    log = RequestLog()
    with pytest.raises(ValueError):
        ArrayOpenLoop(sim, fabric, listener, app, log, rate=0.0)
    with pytest.raises(ValueError):
        ArrayOpenLoop(sim, fabric, listener, app, log, rate=100.0,
                      max_requests=0)
    with pytest.raises(ValueError):
        ArrayOpenLoop(sim, fabric, listener, app, log, rate=100.0,
                      batch_size=0)
    with pytest.raises(ValueError):
        ArrayOpenLoop(sim, fabric, listener, app, log, rate=100.0,
                      distribution="weibull")
