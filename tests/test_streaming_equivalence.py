"""Exact-vs-streaming equivalence across the experiment registry.

``RequestLog(streaming=True)`` must not change *what happens* in a run —
only how the metrics are stored.  For every registry experiment these
tests execute the same quick-scale job twice, once with the exact
per-request log and once streaming, and require:

- every count-derived payload field (requests, completed, failed, VLRT,
  dropped/shed totals and per-site counts, modes, queue maxima,
  throughput) identical to the exact run;
- every sketch-answered field (``p50_ms``/``p99_ms``/``p999_ms``/
  ``mean_ms``, re-binned histograms) excluded from the bit-for-bit
  comparison and instead checked against a nearest-rank oracle teed out
  of the fold path, within the sketch's documented relative-error
  bound (``LatencySketch.relative_error``);
- CTQO attribution coverage in streaming mode still clears the 90 %
  acceptance bar (attribution reads the retained-exact VLRT records).

The full registry sweep is ``slow``; a four-experiment representative
subset (closed-loop, timeline, multi-tier chain, queueing validation)
runs in the fast loop.
"""

import pytest

from repro.core.tail import percentiles
from repro.experiments.runner import (
    REGISTRY,
    STREAMING_UNSUPPORTED,
    JobConfig,
    execute_job,
    expand_jobs,
)
from repro.metrics.sketch import StreamingStats

#: payload keys answered from the latency sketch — approximate by
#: design, verified separately against the teed oracle below
SKETCH_KEYS = frozenset({
    "mean_ms", "p50_ms", "p99_ms", "p999_ms", "measured_mean_ms",
    "histogram",
    # fanout: the parent p99 is answered by log.percentile (sketch in
    # streaming mode) and the ratio divides it by the exact leaf oracle
    "parent_p99_ms", "tail_ratio",
})

#: representatives for the fast loop: one closed-loop sweep (fig01),
#: one timeline figure (fig03), one queueing validation; everything
#: else (including the 25 s deep_chain sweep) rides the slow sweep
FAST = ("fig01", "fig03", "validation")

SLOW = sorted(set(REGISTRY) - STREAMING_UNSUPPORTED - set(FAST))


def assert_equivalent(exact, stream, path="payload"):
    """Recursive structural equality, skipping sketch-derived keys."""
    assert type(exact) is type(stream), f"{path}: {exact!r} vs {stream!r}"
    if isinstance(exact, dict):
        assert set(exact) == set(stream), path
        for key, value in exact.items():
            if key in SKETCH_KEYS:
                continue
            assert_equivalent(value, stream[key], f"{path}.{key}")
    elif isinstance(exact, list):
        assert len(exact) == len(stream), path
        for index, (a, b) in enumerate(zip(exact, stream)):
            assert_equivalent(a, b, f"{path}[{index}]")
    elif isinstance(exact, float):
        # count-derived floats (throughput, fractions, utilizations):
        # same integer numerators over the same window
        assert stream == pytest.approx(exact, rel=1e-9, abs=1e-12), (
            f"{path}: {exact} vs {stream}"
        )
    else:
        assert exact == stream, f"{path}: {exact!r} vs {stream!r}"


def _assert_coverage(payload):
    """Streaming attribution must still clear the acceptance bar."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            if key == "attribution_coverage":
                assert value >= 0.90, f"streaming coverage {value}"
            else:
                _assert_coverage(value)
    elif isinstance(payload, list):
        for value in payload:
            _assert_coverage(value)


def _assert_experiment_equivalent(name):
    for job in expand_jobs([name], quick=True):
        exact = execute_job(job)
        stream = execute_job(JobConfig(
            name=job.name, seed=job.seed, duration=job.duration,
            params={**job.params, "streaming": True},
        ))
        assert_equivalent(exact["payload"], stream["payload"])
        _assert_coverage(stream["payload"])


@pytest.mark.parametrize("name", FAST)
def test_streaming_equivalence(name):
    _assert_experiment_equivalent(name)


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW)
def test_streaming_equivalence_full_registry(name):
    _assert_experiment_equivalent(name)


def test_fig02_rejects_streaming():
    job = expand_jobs(["fig02"], quick=True)[0]
    job.params["streaming"] = True
    with pytest.raises(ValueError, match="exact per-request log"):
        execute_job(job)


# ----------------------------------------------------------------------
# sketch percentiles vs the nearest-rank oracle, on real run data
# ----------------------------------------------------------------------
def _assert_sketch_matches(sketch, values):
    assert len(sketch) == len(values)
    if not values:
        return
    oracle = percentiles(values, qs=(50, 90, 95, 99, 99.9),
                         method="nearest_rank")
    for q, exact in oracle.items():
        estimate = sketch.quantile(q)
        if exact < sketch.min_value:
            assert abs(estimate - exact) <= sketch.min_value
        else:
            assert abs(estimate - exact) <= (
                sketch.relative_error * exact + 1e-15
            ), f"q={q}: |{estimate} - {exact}|"


def test_streaming_percentiles_within_documented_bound(monkeypatch):
    """Tee every folded response time out of a real streaming run and
    hold each sketch to its documented error bound against the
    sorted-list nearest-rank oracle."""
    teed = {}
    original = StreamingStats.fold

    def tee_fold(self, record):
        ok, everything, _ = teed.setdefault(id(self), ([], [], self))
        if not record.failed:
            ok.append(record.response_time)
        everything.append(record.response_time)
        return original(self, record)

    monkeypatch.setattr(StreamingStats, "fold", tee_fold)
    execute_job(JobConfig(
        name="fig01", duration=12.0,
        params={"workloads": [7000], "streaming": True},
    ))
    assert teed, "no streaming log folded anything"
    for ok, everything, stats in teed.values():
        _assert_sketch_matches(stats.sketch_ok, ok)
        _assert_sketch_matches(stats.sketch_all, everything)
