"""Unit tests for replica groups, balancers and hedging
(repro.servers.replica)."""

import pytest

from repro.net import NetworkFabric
from repro.servers.replica import (
    HedgingSpec,
    LeastOutstandingBalancer,
    PowerOfTwoChoicesBalancer,
    ReplicaGroup,
    RoundRobinBalancer,
    build_balancer,
)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=11)


@pytest.fixture
def fabric(sim):
    # zero latency keeps the hedging timeline arithmetic exact
    return NetworkFabric(sim, latency=0.0, rto=3.0, max_retransmits=3)


class FakeGroup:
    """Just enough surface for ``balancer.pick``: listeners + loads."""

    def __init__(self, outstanding):
        self.outstanding = list(outstanding)
        self.listeners = [object()] * len(outstanding)


def serve(sim, listener, delay=0.0):
    """Accept loop replying after ``delay`` (concurrent per exchange)."""

    def handle(exchange):
        if delay:
            yield delay
        exchange.reply(("ok", listener.name))

    def loop():
        while True:
            exchange = yield listener.accept()
            sim.process(handle(exchange))

    return sim.process(loop())


def group_of(sim, fabric, n=3, delays=None, **kwargs):
    listeners = [fabric.listener(f"r{i}", backlog=64) for i in range(n)]
    for i, listener in enumerate(listeners):
        serve(sim, listener, delay=(delays or {}).get(i, 0.0))
    return ReplicaGroup(sim, "grp", listeners, **kwargs)


def client(sim, group, fabric, collect):
    def proc():
        call = group.send(fabric, f"req{len(collect)}")
        value = yield call.response
        collect.append((sim.now, value, call.attempts))

    return sim.process(proc())


# ----------------------------------------------------------------------
# balancer selection
# ----------------------------------------------------------------------
def test_round_robin_rotates_in_index_order():
    balancer = RoundRobinBalancer()
    group = FakeGroup([0, 0, 0])
    assert [balancer.pick(group) for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]


def test_least_outstanding_picks_minimum():
    balancer = LeastOutstandingBalancer()
    assert balancer.pick(FakeGroup([3, 1, 2])) == 1
    assert balancer.pick(FakeGroup([5, 4, 0])) == 2


def test_least_outstanding_breaks_ties_toward_lowest_index():
    balancer = LeastOutstandingBalancer()
    assert balancer.pick(FakeGroup([2, 1, 1])) == 1
    assert balancer.pick(FakeGroup([0, 0, 0])) == 0


@pytest.mark.parametrize("kind", ["random", "power_of_two"])
def test_stochastic_balancers_are_deterministic_per_seed(kind):
    def picks(seed):
        sim = Simulator(seed=seed)
        balancer = build_balancer(kind, sim.fork_rng("lb/grp"))
        group = FakeGroup([0, 0, 0, 0])
        return [balancer.pick(group) for _ in range(30)]

    assert picks(5) == picks(5)
    assert picks(5) != picks(6)


def test_power_of_two_prefers_the_less_loaded_sample():
    sim = Simulator(seed=3)
    balancer = PowerOfTwoChoicesBalancer(sim.fork_rng("lb/x"))
    group = FakeGroup([0, 10, 10])
    chosen = [balancer.pick(group) for _ in range(60)]
    # whenever replica 0 lands in the sampled pair (~2/3 of draws) it
    # must win; the loaded replicas appear only when 0 was not sampled
    assert chosen.count(0) >= 30
    assert set(chosen) <= {0, 1, 2}


def test_power_of_two_singleton_group_short_circuits():
    sim = Simulator(seed=3)
    balancer = PowerOfTwoChoicesBalancer(sim.fork_rng("lb/x"))
    assert balancer.pick(FakeGroup([7])) == 0


# ----------------------------------------------------------------------
# group dispatch
# ----------------------------------------------------------------------
def test_group_send_round_robin_end_to_end(sim, fabric):
    group = group_of(sim, fabric, n=3)
    collect = []
    for _ in range(6):
        client(sim, group, fabric, collect)
    sim.run(until=1.0)
    assert len(collect) == 6
    assert group.sent == [2, 2, 2]
    assert group.outstanding == [0, 0, 0]
    replied_by = sorted(value[1] for _t, value, _a in collect)
    assert replied_by == ["r0", "r0", "r1", "r1", "r2", "r2"]


def test_group_validation():
    sim = Simulator(seed=1)
    fabric = NetworkFabric(sim)
    with pytest.raises(ValueError, match="needs >= 1 listener"):
        ReplicaGroup(sim, "empty", [])
    listener = fabric.listener("solo")
    with pytest.raises(ValueError, match="hedging needs >= 2"):
        ReplicaGroup(sim, "solo", [listener], hedging=HedgingSpec())
    with pytest.raises(ValueError, match="unknown balancer"):
        ReplicaGroup(sim, "bad", [listener], balancer="bogus")
    with pytest.raises(ValueError, match="hedging must be"):
        ReplicaGroup(sim, "bad2", [listener, listener], hedging=42)


def test_hedging_spec_validation():
    with pytest.raises(ValueError, match="quantile"):
        HedgingSpec(quantile=100.0)
    with pytest.raises(ValueError, match="window"):
        HedgingSpec(min_samples=50, window=10)


# ----------------------------------------------------------------------
# hedging: first response wins, loser releases its slot
# ----------------------------------------------------------------------
def test_hedge_win_fires_once_and_loser_releases_pool_slot(sim, fabric):
    # replica 0 answers in 1.0 s, replica 1 immediately; the hedge
    # (deferred 0.05 s while the window is cold) must win, the caller
    # must see exactly one response, and the losing leg must hand its
    # pool connection back when it finally completes
    group = group_of(
        sim, fabric, n=2, delays={0: 1.0},
        hedging=HedgingSpec(initial_delay=0.05), pool_size=1,
    )
    collect = []
    client(sim, group, fabric, collect)
    sim.run(until=0.5)
    assert len(collect) == 1
    t, value, _attempts = collect[0]
    assert value == ("ok", "r1")
    assert t == pytest.approx(0.05)
    assert group.hedges_issued == 1
    assert group.hedge_wins == 1
    assert group.hedge_losses == 0  # the slow leg is still in flight
    sim.run(until=2.0)
    assert group.hedge_losses == 1  # ... and is wasted work once done
    assert group.outstanding == [0, 0]
    # the slot came back: two more requests (one lands on each replica)
    # both complete, which they could not if the loser leaked its slot
    for _ in range(2):
        client(sim, group, fabric, collect)
    sim.run(until=5.0)
    assert len(collect) == 3
    assert group.outstanding == [0, 0]


def test_hedge_queued_on_busy_pool_is_cancelled_when_primary_wins(sim, fabric):
    # R1 occupies replica 0's single connection for a full second.  R2
    # (primary replica 1, 0.3 s) hedges toward replica 0 at 0.15 s; the
    # hedge queues behind R1's connection and must be *cancelled* — not
    # transmitted — when R2's own primary answers first.
    group = group_of(
        sim, fabric, n=2, delays={0: 1.0, 1: 0.3},
        hedging=HedgingSpec(initial_delay=0.1), pool_size=1,
    )
    collect = []
    client(sim, group, fabric, collect)           # R1 at t=0 -> r0
    sim.call_in(0.05, lambda: client(sim, group, fabric, collect))  # R2 -> r1
    sim.run(until=3.0)
    assert len(collect) == 2
    assert group.hedges_cancelled >= 1
    assert group.outstanding == [0, 0]
    # cancelled legs never reached the wire
    assert group.hedges_issued == 2
    assert sum(group.sent) == group.hedges_issued + 2


def test_unhedged_group_issues_no_hedges(sim, fabric):
    group = group_of(sim, fabric, n=3, delays={0: 0.4})
    collect = []
    for _ in range(6):
        client(sim, group, fabric, collect)
    sim.run(until=2.0)
    assert len(collect) == 6
    assert group.hedges_issued == 0
    assert group.stats()["hedge_wins"] == 0
