"""Tests for the live asyncio testbed (repro.live).

No pytest-asyncio in the environment, so each test drives its own event
loop with ``asyncio.run``.  Assertions are structural/qualitative —
drop counts, queue bounds, protocol behaviour — never tight timing
(real clocks in a shared container are noisy; precise timing belongs to
the simulator).
"""

import asyncio

import pytest

from repro.live import AsyncTier, Dropped, LiveClient, SyncTier
from repro.live.protocol import read_message, write_message


def run(coro):
    return asyncio.run(coro)


async def one_request(address, payload=None, timeout=5.0):
    reader, writer = await asyncio.open_connection(*address)
    try:
        await write_message(writer, payload or {"id": 1})
        return await asyncio.wait_for(read_message(reader), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


# ----------------------------------------------------------------------
# single tiers
# ----------------------------------------------------------------------
def test_sync_tier_serves_request():
    async def scenario():
        tier = SyncTier("leaf", threads=2, backlog=2, service_time=0.001)
        await tier.start()
        try:
            response = await one_request(tier.address())
        finally:
            await tier.stop()
        return response, tier.served

    response, served = run(scenario())
    assert response == {"ok": True, "hops": ["leaf"]}
    assert served == 1


def test_sync_tier_drops_beyond_max_sys_q_depth():
    async def scenario():
        tier = SyncTier("leaf", threads=1, backlog=1, service_time=0.2)
        await tier.start()
        try:
            tasks = [
                asyncio.ensure_future(one_request(tier.address()))
                for _ in range(5)
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            await tier.stop()
        return results, tier.drops

    results, drops = run(scenario())
    ok = [r for r in results if isinstance(r, dict)]
    # the unreplied close surfaces as clean EOF (Dropped) or as an RST
    # (ConnectionResetError) depending on unread buffer state
    dropped = [r for r in results if isinstance(r, (Dropped, ConnectionError))]
    assert len(ok) == 2          # 1 in service + 1 queued
    assert len(dropped) == 3
    assert drops == 3


def test_async_tier_absorbs_the_same_burst():
    async def scenario():
        tier = AsyncTier("leaf", lite_q_depth=1000, service_time=0.05)
        await tier.start()
        try:
            tasks = [
                asyncio.ensure_future(one_request(tier.address()))
                for _ in range(20)
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            await tier.stop()
        return results, tier.drops, tier.peak_queue

    results, drops, peak = run(scenario())
    assert all(isinstance(r, dict) and r["ok"] for r in results)
    assert drops == 0
    assert peak >= 15  # buffered, not refused


def test_async_tier_lite_q_depth_still_bounds():
    async def scenario():
        tier = AsyncTier("leaf", lite_q_depth=2, service_time=0.2)
        await tier.start()
        try:
            tasks = [
                asyncio.ensure_future(one_request(tier.address()))
                for _ in range(5)
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            await tier.stop()
        return tier.drops, results

    drops, results = run(scenario())
    assert drops == 3
    assert sum(1 for r in results if isinstance(r, dict)) == 2


def test_sync_tier_releases_queue_slot_when_parked_client_hangs_up():
    """A client that disconnects while parked in the accept queue must
    give its ``_waiting`` slot back without taking a thread, without
    counting as served and without counting as a drop (it was
    admitted)."""

    async def scenario():
        tier = SyncTier("leaf", threads=1, backlog=4, service_time=0.4)
        await tier.start()
        try:
            # occupy the single thread with a slow request
            slow = asyncio.ensure_future(one_request(tier.address()))
            await asyncio.sleep(0.1)
            assert tier._busy == 1
            # park a client in the accept queue, then hang up on it
            ghost_reader, ghost_writer = await asyncio.open_connection(
                *tier.address()
            )
            await asyncio.sleep(0.05)
            assert tier._waiting == 1
            ghost_writer.close()
            await ghost_writer.wait_closed()
            # park a live client behind the ghost; when the thread
            # frees, it (not the ghost) must get the slot
            live = asyncio.ensure_future(one_request(tier.address()))
            response = await slow
            live_response = await live
            # let the ghost's handler finish unwinding
            await asyncio.sleep(0.05)
        finally:
            await tier.stop()
        return tier, response, live_response

    tier, response, live_response = run(scenario())
    assert response["ok"] and live_response["ok"]
    assert tier.served == 2          # the ghost is not a serve...
    assert tier.drops == 0           # ...and was admitted, so not a drop
    assert tier._waiting == 0        # the parked slot was released
    assert tier._busy == 0
    assert tier.queue_depth() == 0


def test_drop_taxonomy_separates_local_and_downstream():
    """``drops`` counts connections a tier itself refused; a request
    that fails because a *downstream* tier dropped it lands in
    ``downstream_drops`` on the upstream tier instead."""

    async def scenario():
        db = SyncTier("db", threads=1, backlog=0, service_time=0.2)
        await db.start()
        web = SyncTier("web", threads=8, backlog=8, service_time=0.001,
                       downstream=db.address())
        await web.start()
        try:
            tasks = [
                asyncio.ensure_future(one_request(web.address()))
                for _ in range(6)
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            await web.stop()
            await db.stop()
        return web, db, results

    web, db, results = run(scenario())
    failed = [r for r in results
              if isinstance(r, dict) and not r.get("ok")]
    # web admitted everything: its failures are purely propagated
    assert web.drops == 0
    assert web.downstream_drops > 0
    assert web.downstream_drops == db.drops == len(failed)
    assert db.downstream_drops == 0  # the leaf has no downstream


def test_tier_parameter_validation():
    with pytest.raises(ValueError):
        SyncTier("x", threads=0)
    with pytest.raises(ValueError):
        AsyncTier("x", lite_q_depth=0)


# ----------------------------------------------------------------------
# chains and stalls
# ----------------------------------------------------------------------
def test_request_traverses_live_chain():
    async def scenario():
        db = SyncTier("db", service_time=0.001)
        await db.start()
        app = SyncTier("app", service_time=0.001, downstream=db.address())
        await app.start()
        try:
            response = await one_request(app.address())
        finally:
            await app.stop()
            await db.stop()
        return response

    response = run(scenario())
    assert response["hops"] == ["db", "app"]


def test_stall_blocks_then_releases():
    async def scenario():
        tier = SyncTier("leaf", threads=4, backlog=4, service_time=0.001)
        await tier.start()
        try:
            tier.stall(0.3)
            start = asyncio.get_event_loop().time()
            response = await one_request(tier.address())
            elapsed = asyncio.get_event_loop().time() - start
        finally:
            await tier.stop()
        return response, elapsed

    response, elapsed = run(scenario())
    assert response["ok"]
    assert elapsed >= 0.25  # held for (most of) the stall


def test_upstream_ctqo_on_real_sockets():
    """The paper's mechanism, live: stall the downstream tier; the
    bounded upstream fills and drops real connections."""

    async def scenario():
        db = SyncTier("db", threads=2, backlog=2, service_time=0.001)
        await db.start()
        web = SyncTier("web", threads=2, backlog=2, service_time=0.0005,
                       downstream=db.address())
        await web.start()
        try:
            db.stall(0.5)
            tasks = [
                asyncio.ensure_future(
                    one_request(web.address(), timeout=3.0)
                )
                for _ in range(12)
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            await web.stop()
            await db.stop()
        return web.drops, db.drops, results

    web_drops, db_drops, results = run(scenario())
    assert web_drops > 0            # upstream CTQO: the front tier drops
    served = [r for r in results if isinstance(r, dict) and r.get("ok")]
    assert served                   # the queued ones complete post-stall


def test_async_chain_no_drops_during_stall():
    async def scenario():
        db = AsyncTier("db", service_time=0.001)
        await db.start()
        web = AsyncTier("web", service_time=0.0005,
                        downstream=db.address())
        await web.start()
        try:
            db.stall(0.5)
            tasks = [
                asyncio.ensure_future(
                    one_request(web.address(), timeout=3.0)
                )
                for _ in range(12)
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            await web.stop()
            await db.stop()
        return web.drops + db.drops, results

    drops, results = run(scenario())
    assert drops == 0
    assert all(isinstance(r, dict) and r["ok"] for r in results)


# ----------------------------------------------------------------------
# the client's retransmission behaviour
# ----------------------------------------------------------------------
def test_client_retries_after_drop_and_shows_rto_mode():
    async def scenario():
        tier = SyncTier("leaf", threads=1, backlog=0, service_time=0.05)
        await tier.start()
        try:
            client = LiveClient(tier.address(), rate=1000.0, rto=0.2,
                                max_retries=4)
            # fire a burst well beyond MaxSysQDepth=1
            tasks = [
                asyncio.ensure_future(client._one_request(i))
                for i in range(6)
            ]
            await asyncio.gather(*tasks)
        finally:
            await tier.stop()
        return client

    client = run(scenario())
    retried = [r for r in client.records if r.attempts > 1]
    assert retried, "burst beyond the queue bound must force retries"
    # retried requests carry the rto signature in their response times
    assert all(r.response_time >= 0.2 for r in retried)
    summary = client.summary()
    assert summary["requests"] == 6


def test_live_demo_comparison_qualitative():
    """The shipped demo: sync drops during the stall, async does not."""
    from repro.live.demo import run_comparison

    results = run(run_comparison(duration=2.0, rate=80.0, stall_at=0.5,
                                 stall_duration=0.6, rto=0.25))
    sync_drops = sum(results["sync"]["drops_by_tier"].values())
    async_drops = sum(results["async"]["drops_by_tier"].values())
    assert sync_drops > 0
    assert async_drops == 0
    assert results["async"]["failed"] == 0
    # taxonomy: the async stack propagates no downstream drops either,
    # and the sync stack's summary keeps the two counters separate
    assert sum(results["async"]["downstream_drops_by_tier"].values()) == 0
    assert set(results["sync"]["downstream_drops_by_tier"]) == \
        set(results["sync"]["drops_by_tier"])
