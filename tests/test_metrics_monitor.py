"""Unit tests for the 50 ms sampler (repro.metrics.monitor)."""

import pytest

from repro.cpu import Host
from repro.metrics import SystemMonitor
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=4)


class FakeServer:
    """Minimal server interface for the monitor."""

    def __init__(self):
        self.depth = 0
        self.stats = type("S", (), {"peak_queue_depth": 0})()

    def queue_depth(self):
        return self.depth

    def _note_queue_depth(self):
        pass


def test_cpu_utilization_windows(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    monitor = SystemMonitor(sim, interval=0.1).watch_vm("vm", vm).start()

    def load():
        yield 0.35
        yield vm.execute(0.2)

    sim.process(load())
    sim.run(until=1.0)
    series = monitor.cpu["vm"]
    # windows (0,0.1], (0.1,0.2], (0.2,0.3]: idle; (0.3,0.4]: 50% busy;
    # probes sit mid-window to dodge float drift in the sample times
    assert series.value_at(0.15) == pytest.approx(0.0)
    assert series.value_at(0.45) == pytest.approx(0.5)
    assert series.value_at(0.55) == pytest.approx(1.0)


def test_iowait_sampling(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    monitor = SystemMonitor(sim, interval=0.1).watch_vm("vm", vm).start()
    vm.execute(5.0)
    sim.call_in(0.2, vm.freeze, 0.1)
    sim.run(until=1.0)
    assert monitor.iowait["vm"].value_at(0.35) == pytest.approx(1.0)
    assert monitor.iowait["vm"].value_at(0.55) == pytest.approx(0.0)


def test_multicore_vm_normalized_by_vcpus(sim):
    host = Host(sim, cores=4)
    vm = host.add_vm("vm", vcpus=4)
    monitor = SystemMonitor(sim, interval=0.1).watch_vm("vm", vm).start()
    for _ in range(2):
        vm.execute(1.0)
    sim.run(until=0.5)
    # 2 of 4 vcpus busy -> 50%
    assert monitor.cpu["vm"].value_at(0.1) == pytest.approx(0.5)


def test_queue_depth_sampling(sim):
    server = FakeServer()
    monitor = SystemMonitor(sim, interval=0.1)
    monitor.watch_server("srv", server).start()
    sim.call_in(0.25, lambda: setattr(server, "depth", 7))
    sim.run(until=0.5)
    series = monitor.queues["srv"]
    assert series.value_at(0.25) == 0
    assert series.value_at(0.35) == 7


def test_sampling_interval_respected(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    monitor = SystemMonitor(sim, interval=0.05).watch_vm("vm", vm).start()
    sim.run(until=1.0)
    # 19 or 20 depending on float accumulation at the horizon boundary
    assert len(monitor.cpu["vm"]) in (19, 20)
    assert monitor.cpu["vm"].times[0] == pytest.approx(0.05)


def test_invalid_interval(sim):
    with pytest.raises(ValueError):
        SystemMonitor(sim, interval=0)


def test_start_idempotent(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    monitor = SystemMonitor(sim, interval=0.1).watch_vm("vm", vm)
    monitor.start()
    monitor.start()
    sim.run(until=0.55)
    assert len(monitor.cpu["vm"]) == 5  # not double-sampled


class FakeListener:
    def __init__(self):
        self.backlog_length = 0


class GaugedFakeServer(FakeServer):
    """FakeServer plus the full fine-grained gauge interface."""

    def __init__(self):
        super().__init__()
        self.busy = 0
        self.listener = FakeListener()
        self.max_sys_q_depth = 10

    def occupancy(self):
        return self.busy


def test_fine_grained_gauges_sampled(sim):
    server = GaugedFakeServer()
    monitor = SystemMonitor(sim, interval=0.1)
    monitor.watch_server("srv", server).start()

    def load():
        server.busy = 3
        server.listener.backlog_length = 5
        server.depth = 8

    sim.call_in(0.25, load)
    sim.run(until=0.5)
    assert monitor.occupancy["srv"].value_at(0.15) == 0
    assert monitor.occupancy["srv"].value_at(0.35) == 3
    assert monitor.backlog["srv"].value_at(0.35) == 5
    # headroom = MaxSysQDepth - queue_depth()
    assert monitor.headroom["srv"].value_at(0.15) == 10
    assert monitor.headroom["srv"].value_at(0.35) == 2


def test_minimal_server_gets_no_gauges(sim):
    """Servers without the gauge interface still get queue sampling."""
    monitor = SystemMonitor(sim, interval=0.1)
    monitor.watch_server("srv", FakeServer()).start()
    sim.run(until=0.3)
    assert "srv" in monitor.queues
    assert "srv" not in monitor.occupancy
    assert "srv" not in monitor.backlog
    assert "srv" not in monitor.headroom


def test_cache_counters_sampled(sim):
    from repro.servers.cache import LruCache

    cache = LruCache(sim, 8, name="front-cache")
    monitor = (SystemMonitor(sim, interval=0.1)
               .watch_cache("front", cache).start())

    def traffic():
        cache.put("k", "v")
        cache.get("k")                      # hit
        cache.get("cold")                   # miss
        yield 0.25
        cache.get("other")                  # second miss

    sim.process(traffic())
    sim.run(until=0.5)
    hits = monitor.cache_hits["front"]
    misses = monitor.cache_misses["front"]
    assert hits.name == "cache_hits:front"
    assert misses.name == "cache_misses:front"
    # cumulative counters, collectl-style: later samples never decrease
    assert hits.value_at(0.15) == 1
    assert misses.value_at(0.15) == 1
    assert misses.value_at(0.35) == 2
    assert list(misses.values) == sorted(misses.values)


def test_storage_gauges_sampled(sim):
    from repro.servers.storage import WriteBackStore

    store = WriteBackStore(sim, service_time=0.2, name="db-store")
    monitor = (SystemMonitor(sim, interval=0.1)
               .watch_storage("db", store).start())
    for _ in range(3):
        store.write()
    sim.run(until=0.65)
    depth = monitor.storage_depth["db"]
    buffer = monitor.write_buffer["db"]
    assert depth.name == "storage_depth:db"
    assert buffer.name == "write_buffer:db"
    # 3 buffered writes at 200 ms each drain one by one
    assert buffer.value_at(0.15) == 3
    assert buffer.value_at(0.35) == 2
    assert buffer.value_at(0.55) == 1
    assert depth.value_at(0.15) == 3
