"""Unit tests for millibottleneck injectors (repro.injectors)."""

import pytest

from repro.cpu import Host
from repro.injectors import ColocationInjector, LogFlushInjector
from repro.sim import Simulator
from repro.workload import BurstModulator


@pytest.fixture
def sim():
    return Simulator(seed=21)


# ----------------------------------------------------------------------
# co-location (CPU millibottlenecks)
# ----------------------------------------------------------------------
def test_scripted_bursts_fire_at_requested_times(sim):
    host = Host(sim, cores=1)
    injector = ColocationInjector(sim, host, burst_cpu_seconds=0.1,
                                  burst_jobs=10)
    injector.scripted([2.0, 5.0])
    sim.run(until=10.0)
    assert injector.burst_times == [2.0, 5.0]


def test_burst_starves_coresident_vm(sim):
    host = Host(sim, cores=1)
    victim = host.add_vm("victim")
    injector = ColocationInjector(sim, host, burst_cpu_seconds=0.5,
                                  burst_jobs=50, shares=30.0)
    injector.idle_util = 0.0
    injector.scripted([1.0])
    done = {}
    victim.execute(0.2).add_callback(lambda ev: done.setdefault("j", sim.now))

    def late_job():
        yield 1.0
        victim.execute(0.2).add_callback(
            lambda ev: done.setdefault("k", sim.now)
        )

    sim.process(late_job())
    sim.run(until=10.0)
    assert done["j"] == pytest.approx(0.2)  # before the burst: full speed
    # during the burst the victim gets ~1/31 of the core; the antagonist
    # needs ~0.5/(30/31) ≈ 0.517s, then the victim's remaining work runs
    assert done["k"] > 0.6


def test_antagonist_consumes_burst_demand(sim):
    host = Host(sim, cores=4)
    injector = ColocationInjector(sim, host, burst_cpu_seconds=0.3,
                                  burst_jobs=100)
    injector.idle_util = 0.0
    injector.scripted([0.5])
    sim.run(until=5.0)
    host.settle()
    assert injector.vm.consumed == pytest.approx(0.3, rel=0.01)


def test_periodic_bursts(sim):
    host = Host(sim, cores=1)
    injector = ColocationInjector(sim, host, burst_cpu_seconds=0.05,
                                  burst_jobs=5)
    injector.periodic(3.0, until=10.0)
    sim.run(until=12.0)
    assert injector.burst_times == [3.0, 6.0, 9.0]


def test_modulator_driven_bursts(sim):
    host = Host(sim, cores=1)
    injector = ColocationInjector(sim, host, burst_cpu_seconds=0.05,
                                  burst_jobs=5)
    modulator = BurstModulator(sim, intensity=5.0, burst_duration=0.5,
                               normal_duration=2.0)
    injector.bursty(modulator)
    sim.run(until=30.0)
    burst_transitions = [t for t, s in modulator.transitions if s == "burst"]
    assert len(injector.burst_times) == len(burst_transitions)


def test_background_load_is_negligible(sim):
    host = Host(sim, cores=1)
    injector = ColocationInjector(sim, host, burst_cpu_seconds=0.1,
                                  burst_jobs=10)
    injector.scripted([])  # background only
    sim.run(until=20.0)
    host.settle()
    assert injector.vm.consumed / 20.0 == pytest.approx(0.02, abs=0.01)


def test_validation(sim):
    host = Host(sim, cores=1)
    with pytest.raises(ValueError):
        ColocationInjector(sim, host, burst_cpu_seconds=0)
    with pytest.raises(ValueError):
        ColocationInjector(sim, host, burst_jobs=0)
    injector = ColocationInjector(sim, host)
    with pytest.raises(ValueError):
        injector.periodic(0, until=10)


# ----------------------------------------------------------------------
# log flushing (I/O millibottlenecks)
# ----------------------------------------------------------------------
def test_flushes_on_schedule(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("mysql")
    injector = LogFlushInjector(sim, vm, period=30.0, duration=0.4,
                                offset=10.0).start()
    sim.run(until=80.0)
    assert injector.flush_times == [10.0, 40.0, 70.0]


def test_flush_freezes_vm_and_counts_iowait(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("mysql")
    LogFlushInjector(sim, vm, period=5.0, duration=0.5, offset=1.0).start()
    done = {}
    vm.execute(2.0).add_callback(lambda ev: done.setdefault("j", sim.now))
    sim.run(until=4.0)
    # job needs 2s of CPU; one 0.5s freeze at t=1 delays it to 2.5
    assert done["j"] == pytest.approx(2.5)
    assert vm.iowait == pytest.approx(0.5)


def test_default_offset_is_one_period(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("mysql")
    injector = LogFlushInjector(sim, vm, period=10.0, duration=0.2).start()
    sim.run(until=25.0)
    assert injector.flush_times == [10.0, 20.0]


def test_start_idempotent(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("mysql")
    injector = LogFlushInjector(sim, vm, period=10.0, duration=0.2)
    injector.start()
    injector.start()
    sim.run(until=15.0)
    assert injector.flush_times == [10.0]


def test_flush_validation(sim):
    host = Host(sim, cores=1)
    vm = host.add_vm("mysql")
    with pytest.raises(ValueError):
        LogFlushInjector(sim, vm, period=0)
    with pytest.raises(ValueError):
        LogFlushInjector(sim, vm, duration=0)
    with pytest.raises(ValueError):
        LogFlushInjector(sim, vm, period=1.0, duration=2.0)


# ----------------------------------------------------------------------
# GC pauses (memory millibottlenecks)
# ----------------------------------------------------------------------
def test_gc_pauses_freeze_the_vm(sim):
    from repro.injectors import GcPauseInjector

    host = Host(sim, cores=1)
    vm = host.add_vm("tomcat")
    injector = GcPauseInjector(sim, vm, period=5.0, min_pause=0.2,
                               max_pause=0.4).start()
    vm.execute(50.0)  # keep the VM busy so iowait accrues during pauses
    sim.run(until=60.0)
    host.settle()
    assert injector.pauses, "no GC pauses occurred"
    total = sum(duration for _t, duration in injector.pauses
                if _t + duration <= 60.0)
    assert vm.iowait == pytest.approx(total, rel=0.1)
    for _t, duration in injector.pauses:
        assert 0.2 <= duration <= 0.4


def test_gc_pause_gaps_roughly_exponential(sim):
    from repro.injectors import GcPauseInjector

    host = Host(sim, cores=1)
    vm = host.add_vm("tomcat")
    injector = GcPauseInjector(sim, vm, period=2.0, min_pause=0.05,
                               max_pause=0.06).start()
    sim.run(until=2000.0)
    starts = [t for t, _d in injector.pauses]
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(2.0, rel=0.15)


def test_gc_validation(sim):
    from repro.injectors import GcPauseInjector

    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    with pytest.raises(ValueError):
        GcPauseInjector(sim, vm, period=0)
    with pytest.raises(ValueError):
        GcPauseInjector(sim, vm, min_pause=0.5, max_pause=0.2)
    with pytest.raises(ValueError):
        GcPauseInjector(sim, vm, period=1.0, max_pause=1.5)


def test_gc_determinism(sim):
    from repro.injectors import GcPauseInjector

    def run_once():
        s = Simulator(seed=77)
        host = Host(s, cores=1)
        vm = host.add_vm("vm")
        injector = GcPauseInjector(s, vm, period=3.0).start()
        s.run(until=100.0)
        return injector.pauses

    assert run_once() == run_once()


# ----------------------------------------------------------------------
# network jams
# ----------------------------------------------------------------------
def test_netjam_holds_then_releases_packets(sim):
    from repro.injectors import NetworkJamInjector
    from repro.net import NetworkFabric

    fabric = NetworkFabric(sim, latency=0.0)
    listener = fabric.listener("srv", backlog=100)
    injector = NetworkJamInjector(sim, listener, period=10.0,
                                  duration=1.0, offset=2.0).start()

    def trickle():
        for i in range(30):
            fabric.send(listener, i)
            yield 0.1

    sim.process(trickle())
    sim.run(until=2.5)
    assert injector.held_packets > 0        # jam active, packets parked
    assert listener.backlog_length < 25
    sim.run(until=4.0)
    assert injector.held_packets == 0       # released
    assert listener.backlog_length == 30    # all arrived, none lost
    assert listener.drops == 0


def test_netjam_release_burst_can_overflow_and_retransmit(sim):
    """A network stall converts a trickle into a burst: packets dropped
    on release are retransmitted like any other drop."""
    from repro.injectors import NetworkJamInjector
    from repro.net import NetworkFabric

    fabric = NetworkFabric(sim, latency=0.0, rto=3.0)
    listener = fabric.listener("srv", backlog=5)
    NetworkJamInjector(sim, listener, period=100.0, duration=1.0,
                       offset=1.0).start()

    def trickle():
        for i in range(20):
            fabric.send(listener, i)
            yield 0.05  # well within the backlog's pace un-jammed

    sim.process(trickle())
    sim.run(until=2.5)
    assert listener.drops > 0               # the release burst overflowed
    # the dropped packets come back ~3 s later (retransmission)
    before = listener.delivered
    sim.run(until=6.0)
    for _ in range(listener.backlog_length):
        listener.try_accept()
    sim.run(until=8.0)
    assert listener.delivered > before      # retransmissions arrived


def test_netjam_validation(sim):
    from repro.injectors import NetworkJamInjector
    from repro.net import NetworkFabric

    fabric = NetworkFabric(sim)
    listener = fabric.listener("srv")
    with pytest.raises(ValueError):
        NetworkJamInjector(sim, listener, period=0)
    with pytest.raises(ValueError):
        NetworkJamInjector(sim, listener, period=1.0, duration=2.0)
