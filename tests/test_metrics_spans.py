"""Unit tests for per-request span analysis (repro.metrics.spans)."""

import pytest

from repro.metrics import RequestRecord
from repro.metrics.spans import narrate, retransmission_gaps, server_spans


def trace_for_two_query_request():
    """A synthetic trace: web -> app -> db (twice), all replying."""
    return [
        (10.000, "start", "apache"),
        (10.001, "call", "apache->app"),
        (10.002, "start", "tomcat"),
        (10.003, "call", "tomcat->db"),
        (10.004, "start", "mysql"),
        (10.005, "reply", "mysql"),
        (10.006, "call", "tomcat->db"),
        (10.007, "start", "mysql"),
        (10.009, "reply", "mysql"),
        (10.010, "reply", "tomcat"),
        (10.011, "reply", "apache"),
    ]


def test_server_spans_pairing_and_order():
    spans = server_spans(trace_for_two_query_request())
    names = [(s.server, round(s.duration * 1000, 1)) for s in spans]
    assert names == [
        ("apache", 11.0),
        ("tomcat", 8.0),
        ("mysql", 1.0),
        ("mysql", 2.0),
    ]
    assert all(s.outcome == "reply" for s in spans)


def test_server_spans_error_outcome():
    trace = [
        (1.0, "start", "tomcat"),
        (1.5, "error", "tomcat: no route to tier 'db'"),
    ]
    spans = server_spans(trace)
    assert len(spans) == 1
    assert spans[0].outcome == "error"
    assert spans[0].duration == pytest.approx(0.5)


def test_server_spans_unmatched_start_ignored():
    trace = [(1.0, "start", "tomcat")]  # never replied (still in flight)
    assert server_spans(trace) == []


def test_retransmission_gaps():
    trace = [
        (0.0, "drop", "apache"),
        (3.0, "start", "apache"),
        (3.001, "reply", "apache"),
    ]
    gaps = retransmission_gaps(trace)
    assert gaps == [(0.0, 3.0, "apache")]


def test_retransmission_gap_unresolved_drop():
    trace = [(0.0, "drop", "apache")]
    gaps = retransmission_gaps(trace)
    assert gaps == [(0.0, None, "apache")]


def test_consecutive_drops_resume_at_first_non_drop():
    trace = [
        (0.0, "drop", "apache"),
        (3.0, "drop", "apache"),
        (6.0, "start", "apache"),
    ]
    gaps = retransmission_gaps(trace)
    assert gaps[0] == (0.0, 6.0, "apache")
    assert gaps[1] == (3.0, 6.0, "apache")


def test_narrate_mentions_drop_and_dead_time():
    record = RequestRecord(
        7, "ViewStory", 10.0, 13.01,
        drops=[(10.0, "apache")],
        trace=[
            (10.0, "drop", "apache"),
            (13.0, "start", "apache"),
            (13.01, "reply", "apache"),
        ],
    )
    text = narrate(record)
    assert "PACKET DROPPED at apache" in text
    assert "3010.0 ms total" in text
    assert "dead time: 3000 ms" in text
    assert "in apache: 10.00 ms" in text


def test_narrate_without_trace():
    record = RequestRecord(9, "X", 0.0, 0.001)
    assert "no trace kept" in narrate(record)


def test_vlrt_traces_kept_by_default_in_real_run():
    import sys
    sys.path.insert(0, "tests")
    from test_core_evaluation import tiny_scenario

    result = (
        tiny_scenario()
        .with_consolidation("app", times=[4.0, 7.0], burst_cpu=2.0,
                            burst_jobs=40, shares=200.0)
        .run()
    )
    vlrt_with_trace = [r for r in result.log.vlrt() if r.trace]
    fast_with_trace = [
        r for r in result.log.records
        if not r.failed and r.response_time < 1.0 and r.trace
    ]
    assert vlrt_with_trace, "VLRT requests should keep their traces"
    assert not fast_with_trace, "fast requests should not keep traces"
    # the traces actually explain the tail: drops + retransmission gaps
    gaps = retransmission_gaps(vlrt_with_trace[0].trace)
    assert gaps and gaps[0][1] is not None
    assert gaps[0][1] - gaps[0][0] == pytest.approx(3.0, abs=0.2)


def test_retransmission_gaps_interleaved_visits():
    """Drops from different listeners resolve at the same next event."""
    trace = [
        (0.0, "drop", "apache"),
        (0.5, "drop", "tomcat"),
        (3.0, "start", "apache"),
        (3.5, "drop", "tomcat"),
        (6.5, "start", "tomcat"),
    ]
    gaps = retransmission_gaps(trace)
    assert gaps == [
        (0.0, 3.0, "apache"),
        (0.5, 3.0, "tomcat"),
        (3.5, 6.5, "tomcat"),
    ]


def test_retransmission_gaps_single_pass_scales():
    """A drop-storm trace (the quadratic worst case) stays fast."""
    trace = []
    for i in range(2000):
        trace.append((float(i), "drop", "apache"))
    trace.append((3000.0, "start", "apache"))
    gaps = retransmission_gaps(trace)
    assert len(gaps) == 2000
    assert all(resume == 3000.0 for _d, resume, _l in gaps)


def test_narrate_multi_visit_spans():
    """A two-query request narrates one line per server visit."""
    trace = trace_for_two_query_request()
    record = RequestRecord(11, "StoryOfTheDay", 10.0, 10.011, trace=trace)
    text = narrate(record)
    assert text.count("in mysql:") == 2
    assert "in tomcat: 8.00 ms" in text
    assert "in apache: 11.00 ms" in text


def test_narrate_failed_request():
    record = RequestRecord(
        13, "ViewStory", 0.0, 9.0, attempts=4, failed=True,
        error="ConnectionTimeout",
        drops=[(0.0, "apache"), (3.0, "apache"), (6.0, "apache"),
               (9.0, "apache")],
        trace=[
            (0.0, "drop", "apache"),
            (3.0, "drop", "apache"),
            (6.0, "drop", "apache"),
            (9.0, "drop", "apache"),
        ],
    )
    text = narrate(record)
    assert "FAILED" in text
    assert text.count("PACKET DROPPED at apache") == 4
    # every drop is unresolved: no dead-time line without a resume event
    gaps = retransmission_gaps(record.trace)
    assert all(resume is None for _d, resume, _l in gaps)


def test_narrate_attributes_drop_site():
    record = RequestRecord(
        17, "BrowseStories", 1.0, 4.2,
        drops=[(1.0, "tomcat")],
        trace=[
            (1.0, "start", "apache"),
            (1.0, "drop", "tomcat"),
            (4.0, "start", "tomcat"),
            (4.1, "reply", "tomcat"),
            (4.2, "reply", "apache"),
        ],
    )
    text = narrate(record)
    assert "PACKET DROPPED at tomcat" in text
    assert "PACKET DROPPED at apache" not in text
    assert "dead time: 3000 ms" in text
