"""Unit tests for generator processes (repro.sim.process)."""

import pytest

from repro.sim import ProcessInterrupt, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=3)


def test_process_requires_generator(sim):
    def plain():
        return 1

    with pytest.raises(TypeError):
        sim.process(plain())  # plain() returns an int, not a generator


def test_yield_numeric_delay(sim):
    trace = []

    def proc():
        trace.append(sim.now)
        yield 1.5
        trace.append(sim.now)
        yield 2  # ints work too
        trace.append(sim.now)

    sim.process(proc())
    sim.run()
    assert trace == [0.0, 1.5, 3.5]


def test_yield_event_receives_value(sim):
    ev = sim.event()
    got = []

    def proc():
        value = yield ev
        got.append(value)

    sim.process(proc())
    sim.call_in(1.0, ev.succeed, "hello")
    sim.run()
    assert got == ["hello"]


def test_failed_event_raises_inside_process(sim):
    ev = sim.event()
    caught = []

    def proc():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(proc())
    sim.call_in(1.0, ev.fail, RuntimeError("bad"))
    sim.run()
    assert caught == ["bad"]


def test_process_return_value_becomes_event_value(sim):
    def proc():
        yield 1.0
        return 42

    p = sim.process(proc())
    sim.run()
    assert p.ok
    assert p.value == 42


def test_process_join(sim):
    def child():
        yield 2.0
        return "child-result"

    results = []

    def parent():
        result = yield sim.process(child())
        results.append((sim.now, result))

    sim.process(parent())
    sim.run()
    assert results == [(2.0, "child-result")]


def test_uncaught_exception_fails_process_event(sim):
    def proc():
        yield 1.0
        raise ValueError("oops")

    p = sim.process(proc())
    watched = []
    p.add_callback(lambda e: watched.append(e.failed))
    sim.run()
    assert p.failed
    assert isinstance(p.value, ValueError)
    assert watched == [True]


def test_interrupt_wakes_process(sim):
    trace = []

    def proc():
        try:
            yield 100.0
        except ProcessInterrupt as interrupt:
            trace.append((sim.now, interrupt.cause))

    p = sim.process(proc())
    sim.call_in(1.0, p.interrupt, "reason")
    sim.run()
    assert trace == [(1.0, "reason")]


def test_interrupt_finished_process_is_noop(sim):
    def proc():
        yield 1.0

    p = sim.process(proc())
    sim.run()
    p.interrupt()  # must not raise
    sim.run()


def test_unhandled_interrupt_fails_process(sim):
    def proc():
        yield 100.0

    p = sim.process(proc())
    sim.call_in(1.0, p.interrupt)
    sim.run()
    assert p.failed
    assert isinstance(p.value, ProcessInterrupt)


def test_stale_wakeup_after_interrupt_is_ignored(sim):
    """The abandoned event firing later must not resume the process."""
    ev = sim.event()
    trace = []

    def proc():
        try:
            yield ev
            trace.append("resumed-by-event")
        except ProcessInterrupt:
            trace.append("interrupted")
            yield 5.0
            trace.append("post-sleep")

    p = sim.process(proc())
    sim.call_in(1.0, p.interrupt)
    sim.call_in(2.0, ev.succeed, None)  # fires while proc sleeps
    sim.run()
    assert trace == ["interrupted", "post-sleep"]


def test_yield_bad_type_fails_process(sim):
    def proc():
        yield "not an event"

    p = sim.process(proc())
    sim.run()
    assert p.failed
    assert isinstance(p.value, TypeError)


def test_process_is_alive_until_done(sim):
    def proc():
        yield 2.0

    p = sim.process(proc())
    assert p.is_alive
    sim.run(until=1.0)
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_many_processes_deterministic_order(sim):
    order = []

    def proc(i):
        yield 1.0
        order.append(i)

    for i in range(20):
        sim.process(proc(i))
    sim.run()
    assert order == list(range(20))
