"""Shared fixtures: small deterministic systems for fast unit tests."""

import pytest

from repro.apps.rubbos import InteractionSpec, RubbosApplication
from repro.sim import Simulator
from repro.units import ms


@pytest.fixture
def sim():
    return Simulator(seed=123)


def tiny_mix(stochastic=False):
    """A deterministic miniature interaction mix for unit tests.

    Costs are exact (no randomness) so response times can be asserted
    to the microsecond.
    """
    return [
        InteractionSpec("StaticContent", 0.25, web_work=ms(0.2),
                        stochastic=stochastic),
        InteractionSpec("BrowseStories", 0.50, web_work=ms(0.1),
                        app_stages=(ms(0.2), ms(0.3)),
                        db_queries=(ms(0.4),),
                        stochastic=stochastic),
        InteractionSpec("ViewStory", 0.25, web_work=ms(0.1),
                        app_stages=(ms(0.1), ms(0.2), ms(0.2)),
                        db_queries=(ms(0.5), ms(0.5)),
                        stochastic=stochastic),
    ]


@pytest.fixture
def tiny_app():
    return RubbosApplication(tiny_mix())


def build_tiny_system(nx=0, seed=7, **overrides):
    """A small 3-tier system: few threads, deterministic app costs."""
    from repro.topology import SystemConfig, build_system

    defaults = dict(
        nx=nx, seed=seed,
        web_threads=8, app_threads=8, db_threads=4,
        web_backlog=4, app_backlog=4, db_backlog=4,
        db_pool_size=4,
        web_spawn_extra_process=False,
        lite_q_depth=64, xtomcat_workers=8,
        xmysql_slots=2, xmysql_queue=32,
        interaction_specs=tiny_mix(),
    )
    defaults.update(overrides)
    return build_system(SystemConfig(**defaults))
