"""Property-based tests (hypothesis) on the core substrates.

These pin down the invariants everything else relies on:

- the kernel executes callbacks in exact time order, deterministically;
- the processor-sharing CPU conserves work and never over-allocates;
- resources never exceed capacity and grant FIFO;
- stores preserve FIFO order and never exceed capacity;
- the tail statistics partition their input;
- the overflow-condition model is monotone in each argument;
- the log-linear latency sketch merges associatively/commutatively and
  answers percentile queries within its documented relative-error bound.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import predicted_overflow
from repro.core.tail import multimodal_clusters, percentiles
from repro.cpu import Host
from repro.metrics import LatencySketch, TimeSeries
from repro.sim import Resource, Simulator, Store


# ----------------------------------------------------------------------
# kernel ordering
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200))
def test_kernel_executes_in_time_order(times):
    sim = Simulator(seed=0)
    fired = []
    for t in times:
        sim.call_at(t, lambda t=t: fired.append(t))
    sim.run()
    assert fired == sorted(times)
    assert len(fired) == len(times)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.integers(min_value=-5, max_value=5)),
                min_size=1, max_size=100))
def test_kernel_priority_then_insertion_order(entries):
    sim = Simulator(seed=0)
    fired = []
    for index, (t, priority) in enumerate(entries):
        sim.call_at(t, lambda i=index: fired.append(i), priority=priority)
    sim.run()
    expected = [
        i for i, _ in sorted(
            enumerate(entries),
            key=lambda pair: (pair[1][0], pair[1][1], pair[0]),
        )
    ]
    assert fired == expected


# ----------------------------------------------------------------------
# processor-sharing CPU: conservation and bounds
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),  # at
            st.floats(min_value=1e-4, max_value=0.5, allow_nan=False),  # work
        ),
        min_size=1, max_size=30,
    ),
    st.integers(min_value=1, max_value=4),  # cores
)
@settings(max_examples=50, deadline=None)
def test_cpu_conserves_work(jobs, cores):
    sim = Simulator(seed=0)
    host = Host(sim, cores=cores)
    vm = host.add_vm("vm", vcpus=cores)
    completions = []

    def submit(at, work):
        def go():
            yield at
            start = sim.now
            yield vm.execute(work)
            completions.append((start, sim.now, work))

        sim.process(go())

    for at, work in jobs:
        submit(at, work)
    sim.run()
    host.settle()
    total_work = sum(w for _a, w in jobs)
    # conservation: effective work completed equals work submitted
    assert vm.effective == pytest.approx(total_work, rel=1e-6, abs=1e-9)
    assert vm.consumed == pytest.approx(total_work, rel=1e-6, abs=1e-9)
    assert len(completions) == len(jobs)
    for start, end, work in completions:
        # nothing finishes faster than running alone at one core
        assert end - start >= work - 1e-9
    # the host can never have been busier than wall-time * cores
    makespan = max(end for _s, end, _w in completions)
    assert vm.consumed <= makespan * cores + 1e-9


@given(st.lists(st.floats(min_value=1e-4, max_value=0.2, allow_nan=False),
                min_size=2, max_size=20))
@settings(max_examples=50, deadline=None)
def test_cpu_simultaneous_jobs_complete_in_work_order(works):
    """With equal-share PS and identical start times, jobs finish in
    order of their size (virtual-progress FIFO)."""
    sim = Simulator(seed=0)
    host = Host(sim, cores=1)
    vm = host.add_vm("vm")
    order = []
    for index, work in enumerate(works):
        vm.execute(work).add_callback(lambda ev, i=index: order.append(i))
    sim.run()
    expected = [i for i, _w in sorted(enumerate(works),
                                      key=lambda p: (p[1], p[0]))]
    assert order == expected


# ----------------------------------------------------------------------
# resources and stores
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=10),
       st.lists(st.sampled_from(["acquire", "release"]), max_size=100))
def test_resource_never_exceeds_capacity(capacity, ops):
    sim = Simulator(seed=0)
    res = Resource(sim, capacity=capacity)
    outstanding = 0  # grants handed out (held or queued) minus releases
    for op in ops:
        if op == "acquire":
            res.acquire()
            outstanding += 1
        elif outstanding > 0:
            res.release()
            outstanding -= 1
        assert 0 <= res.in_use <= res.capacity
        assert res.in_use == min(outstanding, res.capacity)
        assert res.queue_length == max(0, outstanding - res.capacity)


@given(st.integers(min_value=0, max_value=20),
       st.lists(st.integers(), max_size=60))
def test_store_fifo_and_capacity(capacity, items):
    sim = Simulator(seed=0)
    store = Store(sim, capacity=capacity)
    accepted = []
    for item in items:
        if store.put(item):
            accepted.append(item)
    assert len(store) == len(accepted) == min(len(items), capacity)
    drained = []
    while True:
        item = store.try_get()
        if item is None:
            break
        drained.append(item)
    assert drained == accepted  # FIFO, exactly the accepted prefix
    assert accepted == items[: len(accepted)]


# ----------------------------------------------------------------------
# tail statistics
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=30.0,
                          allow_nan=False), max_size=300))
def test_multimodal_clusters_partition_input(rts):
    clusters = multimodal_clusters(rts)
    assert sum(clusters.values()) == len(rts)
    assert all(count >= 0 for count in clusters.values())


@given(st.lists(st.floats(min_value=1e-6, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=300))
def test_percentiles_monotone_and_bounded(rts):
    stats = percentiles(rts, qs=(1, 50, 99))
    assert min(rts) - 1e-9 <= stats[1] <= stats[50] <= stats[99] <= max(rts) + 1e-9


# ----------------------------------------------------------------------
# the latency sketch (streaming metrics)
# ----------------------------------------------------------------------
#: response times spanning microseconds to the 10 s VLRT regime, plus
#: values below min_value (the underflow bucket)
_latency = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)

#: adversarial fixed inputs: bucket boundaries (powers of two scaled by
#: min_value), identical values, a lone sample, and a huge dynamic range
_ADVERSARIAL = [
    [1e-6 * 2.0 ** k for k in range(40)],          # octave boundaries
    [0.003] * 500,                                  # one bucket only
    [7.25],                                         # single sample
    [1e-7, 1e-6, 0.001, 1.0, 9.0, 99.0],            # full dynamic range
    [3.0 - 1e-12, 3.0, 3.0 + 1e-12] * 50,           # boundary straddling
]


def _fill(values, subbuckets=64):
    sketch = LatencySketch(subbuckets=subbuckets)
    for value in values:
        sketch.add(value)
    return sketch


@given(st.lists(_latency, max_size=150), st.lists(_latency, max_size=150))
def test_sketch_merge_commutes(a, b):
    ab = _fill(a).merge(_fill(b))
    ba = _fill(b).merge(_fill(a))
    assert ab.buckets == ba.buckets
    assert len(ab) == len(ba) == len(a) + len(b)
    assert ab.max == ba.max and ab.min == ba.min
    assert ab.mean == pytest.approx(ba.mean, rel=1e-12, abs=1e-15)
    for q in (0, 50, 90, 99, 100):
        assert ab.quantile(q) == ba.quantile(q)


@given(st.lists(_latency, max_size=100), st.lists(_latency, max_size=100),
       st.lists(_latency, max_size=100))
def test_sketch_merge_associates(a, b, c):
    left = _fill(a).merge(_fill(b)).merge(_fill(c))
    right = _fill(a).merge(_fill(b).merge(_fill(c)))
    assert left.buckets == right.buckets
    assert len(left) == len(right)
    assert left.max == right.max and left.min == right.min
    # count-derived stats are exactly associative; the float total can
    # differ by an ulp per regrouping
    assert left.mean == pytest.approx(right.mean, rel=1e-12, abs=1e-15)
    for q in (0, 50, 90, 99, 100):
        assert left.quantile(q) == right.quantile(q)


@given(st.lists(_latency, min_size=1, max_size=300))
def test_sketch_percentiles_monotone_and_clamped(values):
    sketch = _fill(values)
    qs = (0, 10, 25, 50, 75, 90, 99, 99.9, 100)
    estimates = [sketch.quantile(q) for q in qs]
    for lower, higher in zip(estimates, estimates[1:]):
        assert lower <= higher
    # every estimate is clamped into the observed range
    assert all(sketch.min <= e <= sketch.max for e in estimates)
    assert sketch.max == max(values)
    assert estimates[-1] == pytest.approx(
        sketch.max, rel=sketch.relative_error, abs=sketch.min_value
    )


@given(st.lists(st.floats(min_value=1e-6, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=300))
@settings(max_examples=200)
def test_sketch_relative_error_bound_random(values):
    _assert_within_bound(values)


@pytest.mark.parametrize("values", _ADVERSARIAL)
def test_sketch_relative_error_bound_adversarial(values):
    _assert_within_bound(values)


def _assert_within_bound(values, subbuckets=64):
    """Sketch quantiles vs the sorted-list nearest-rank oracle."""
    sketch = _fill(values, subbuckets=subbuckets)
    ordered = sorted(values)
    bound = sketch.relative_error
    assert bound == 1.0 / (2 * subbuckets)
    for q in (1, 25, 50, 75, 90, 95, 99, 99.9):
        exact = ordered[max(1, math.ceil(q / 100.0 * len(ordered))) - 1]
        estimate = sketch.quantile(q)
        if exact < sketch.min_value:
            # underflow bucket: absolute error below min_value
            assert abs(estimate - exact) <= sketch.min_value
        else:
            assert abs(estimate - exact) <= bound * exact + 1e-15, (
                f"q={q}: |{estimate} - {exact}| > {bound} * {exact}"
            )


def test_sketch_underflow_bucket_and_validation():
    sketch = LatencySketch()
    sketch.add(0.0)
    sketch.add(1e-9)
    assert len(sketch) == 2
    assert sketch.quantile(50) <= sketch.min_value
    with pytest.raises(ValueError):
        sketch.add(-1.0)
    with pytest.raises(ValueError):
        sketch.add(1.0, count=0)
    with pytest.raises(ValueError):
        sketch.quantile(101)
    with pytest.raises(ValueError):
        LatencySketch(subbuckets=32).merge(LatencySketch(subbuckets=64))


# ----------------------------------------------------------------------
# the overflow-condition model
# ----------------------------------------------------------------------
@given(st.floats(min_value=0, max_value=1e4, allow_nan=False),
       st.floats(min_value=0, max_value=10, allow_nan=False),
       st.integers(min_value=0, max_value=1000),
       st.floats(min_value=0, max_value=1e4, allow_nan=False))
def test_predicted_overflow_properties(rate, duration, bound, drain):
    overflow = predicted_overflow(rate, duration, bound, drain_rate=drain)
    assert overflow >= 0.0
    assert overflow <= rate * duration + 1e-6  # can't drop more than arrived
    # monotone: more queue space never increases the overflow
    assert predicted_overflow(rate, duration, bound + 10, drain) <= overflow + 1e-9
    # monotone: more drain never increases the overflow
    assert predicted_overflow(rate, duration, bound, drain + 10) <= overflow + 1e-9


# ----------------------------------------------------------------------
# time series
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.floats(min_value=0, max_value=2,
                                    allow_nan=False)),
                min_size=1, max_size=200),
       st.floats(min_value=0.1, max_value=1.9, allow_nan=False))
def test_intervals_above_are_sorted_disjoint_in_range(pairs, threshold):
    pairs = sorted(pairs, key=lambda p: p[0])
    ts = TimeSeries("x")
    for t, v in pairs:
        ts.append(t, v)
    spans = ts.intervals_above(threshold)
    t_min, t_max = pairs[0][0], pairs[-1][0]
    previous_end = -math.inf
    for start, end in spans:
        assert t_min <= start <= end <= t_max
        assert start >= previous_end  # disjoint and sorted
        previous_end = end
