"""Unit tests for tail statistics (repro.core.tail)."""

import pytest

from repro.core import (
    is_multimodal,
    mode_times,
    multimodal_clusters,
    percentiles,
    semilog_histogram,
    tail_heaviness,
)


FAST = [0.005, 0.010, 0.008, 0.020, 0.015]
RETRANS_3S = [3.01, 3.05, 3.12]
RETRANS_6S = [6.02, 6.08]


def test_clusters_fast_only():
    clusters = multimodal_clusters(FAST)
    assert clusters == {0: 5}


def test_clusters_with_retransmission_modes():
    clusters = multimodal_clusters(FAST + RETRANS_3S + RETRANS_6S)
    assert clusters[0] == 5
    assert clusters[1] == 3
    assert clusters[2] == 2


def test_off_mode_values_count_as_bulk():
    clusters = multimodal_clusters([0.01, 1.4, 4.4])
    assert clusters[0] == 3  # 1.4 and 4.4 are outside every mode window


def test_clusters_empty_input():
    assert multimodal_clusters([]) == {0: 0}


def test_clusters_validation():
    with pytest.raises(ValueError):
        multimodal_clusters(FAST, spacing=0)
    with pytest.raises(ValueError):
        multimodal_clusters(FAST, tolerance=2.0)  # >= spacing/2


def test_is_multimodal_thresholds():
    assert not is_multimodal(FAST)
    assert not is_multimodal(FAST + RETRANS_3S[:2])  # below min_cluster
    assert is_multimodal(FAST + RETRANS_3S)


def test_mode_times_locations():
    times = mode_times(FAST + RETRANS_3S + RETRANS_6S)
    assert times[1] == pytest.approx(3.06, abs=0.05)
    assert times[2] == pytest.approx(6.05, abs=0.05)


def test_percentiles():
    data = [i / 100 for i in range(1, 101)]
    stats = percentiles(data, qs=(50, 99))
    assert stats[50] == pytest.approx(0.505, rel=0.01)
    assert stats[99] == pytest.approx(0.9901, rel=0.01)


def test_percentiles_empty():
    assert percentiles([], qs=(50,)) == {50: 0.0}
    assert percentiles([], qs=(0, 50, 100),
                       method="nearest_rank") == {0: 0.0, 50: 0.0, 100: 0.0}


def test_percentiles_single_sample_is_every_percentile():
    for method in ("linear", "nearest_rank"):
        stats = percentiles([0.042], qs=(0, 1, 50, 99, 99.9, 100),
                            method=method)
        assert all(v == pytest.approx(0.042) for v in stats.values()), method


def test_percentiles_nearest_rank_returns_order_statistics():
    data = [0.4, 0.1, 0.3, 0.2]
    stats = percentiles(data, qs=(0, 25, 50, 75, 99, 100),
                        method="nearest_rank")
    # rank = max(1, ceil(q/100 * 4)): every answer is an actual sample
    assert stats[0] == 0.1
    assert stats[25] == 0.1
    assert stats[50] == 0.2
    assert stats[75] == 0.3
    assert stats[99] == 0.4
    assert stats[100] == 0.4
    assert set(stats.values()) <= set(data)


def test_percentiles_validation():
    with pytest.raises(ValueError):
        percentiles([1.0], qs=(101,))
    with pytest.raises(ValueError):
        percentiles([1.0], qs=(-1,))
    with pytest.raises(ValueError):
        percentiles([1.0], qs=(50,), method="midpoint")


def test_tail_heaviness_flags_retransmission_tails():
    healthy = tail_heaviness(FAST * 200)
    sick = tail_heaviness(FAST * 200 + RETRANS_3S)
    assert healthy < 5
    assert sick > 100


def test_tail_heaviness_zero_median():
    assert tail_heaviness([0.0, 0.0]) == 0.0


def test_semilog_histogram_bins_and_clamp():
    rows = semilog_histogram([0.05, 0.15, 3.2, 99.0], bin_width=0.1,
                             max_time=10.0)
    counts = {round(start, 6): count for start, count in rows}
    assert counts[0.0] == 1
    assert counts[0.1] == 1
    assert counts[3.2] == 1
    assert counts[9.9] == 1  # clamped into the last bin


def test_semilog_histogram_validation():
    with pytest.raises(ValueError):
        semilog_histogram([1.0], bin_width=0)
    with pytest.raises(ValueError):
        semilog_histogram([1.0], max_time=0)
