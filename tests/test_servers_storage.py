"""Unit tests for the write-back storage device (repro.servers.storage).

The bufferbloat mechanism under test: writes ack at buffer admission
(instantly when unbounded) while reads complete only at service, behind
every earlier-admitted command.  A bounded buffer defers write acks
when full — the backpressure that keeps the device queue, and with it
read p99, shallow.
"""

import pytest

from repro.servers.storage import WriteBackStore
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=11)


def store(sim, **kwargs):
    kwargs.setdefault("service_time", 0.01)
    return WriteBackStore(sim, **kwargs)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_nonpositive_service_time_rejected(sim):
    with pytest.raises(ValueError, match="service_time must be positive"):
        WriteBackStore(sim, service_time=0.0)


def test_buffer_capacity_below_one_rejected(sim):
    with pytest.raises(ValueError, match="buffer_capacity must be >= 1"):
        store(sim, buffer_capacity=0)


def test_nonpositive_command_sizes_rejected(sim):
    st = store(sim)
    with pytest.raises(ValueError, match="read size must be positive"):
        st.read(0)
    with pytest.raises(ValueError, match="write size must be positive"):
        st.write(-1)


# ----------------------------------------------------------------------
# write-back acks and FIFO read coupling
# ----------------------------------------------------------------------
def test_unbounded_write_acks_at_admission(sim):
    st = store(sim)
    ack = st.write()
    assert ack.triggered                    # instant, zero sim time
    assert st.write_buffer_depth() == 1
    assert st.depth() == 1                  # admitted, not yet served


def test_read_completes_at_service_not_admission(sim):
    st = store(sim, service_time=0.01)
    done = st.read()
    assert not done.triggered
    sim.run(until=0.02)
    assert done.triggered
    assert st.depth() == 0
    assert st.stats.served_reads == 1


def test_read_queues_behind_the_whole_buffered_backlog(sim):
    """The bufferbloat mechanism itself: 10 buffered writes x 10 ms
    delay a subsequent read to ~110 ms even though every write acked
    instantly."""
    st = store(sim, service_time=0.01)
    for _ in range(10):
        assert st.write().triggered
    done = st.read()
    sim.run(until=0.105)
    assert not done.triggered               # still behind the backlog
    sim.run(until=0.115)
    assert done.triggered
    assert st.stats.served_writes == 10
    assert st.write_buffer_depth() == 0


def test_service_time_scales_with_command_size(sim):
    st = store(sim, service_time=0.01)
    done = st.read(size=5.0)
    sim.run(until=0.045)
    assert not done.triggered
    sim.run(until=0.055)
    assert done.triggered
    assert st.stats.busy_time == pytest.approx(0.05)


# ----------------------------------------------------------------------
# the bounded buffer (backpressure)
# ----------------------------------------------------------------------
def test_full_bounded_buffer_defers_the_ack(sim):
    st = store(sim, service_time=0.01, buffer_capacity=2)
    assert st.write().triggered
    assert st.write().triggered
    stalled = st.write()                    # buffer full: ack deferred
    assert not stalled.triggered
    assert st.stats.write_stalls == 1
    assert st.stalled_writes() == 1
    assert st.write_buffer_depth() == 2     # bound respected
    sim.run(until=0.011)                    # first write served
    assert stalled.triggered                # slot freed -> admitted
    assert st.stalled_writes() == 0
    assert st.write_buffer_depth() == 2


def test_bounded_buffer_never_exceeds_capacity(sim):
    st = store(sim, service_time=0.01, buffer_capacity=4)
    acks = [st.write() for _ in range(20)]
    peak = st.write_buffer_depth()
    sim.run(until=1.0)
    assert peak <= 4
    assert all(ack.triggered for ack in acks)
    assert st.stats.write_stalls == 16
    assert st.stats.served_writes == 20
    assert st.depth() == 0


def test_stalled_writes_admit_in_fifo_order(sim):
    st = store(sim, service_time=0.01, buffer_capacity=1)
    st.write()
    first = st.write()
    second = st.write()
    sim.run(until=0.011)
    assert first.triggered
    assert not second.triggered
    sim.run(until=0.021)
    assert second.triggered


def test_drain_restarts_after_idle(sim):
    st = store(sim, service_time=0.01)
    st.read()
    sim.run(until=0.1)
    assert st.depth() == 0
    done = st.read()                        # a fresh drain must spawn
    sim.run(until=0.2)
    assert done.triggered
    assert st.stats.served_reads == 2
