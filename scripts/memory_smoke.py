#!/usr/bin/env python
"""CI memory-budget smoke for the streaming metric path (docs/SCALE.md).

Pushes a scaled-down million-client run (default 200k open-loop
requests) through the full nx=0 stack with ``RequestLog(streaming=True)``
under ``tracemalloc`` and asserts:

- the run issued exactly the requested number of requests;
- the retained-exact-record count stays within the retention bound
  (only VLRT/dropped/shed/failed requests keep records);
- peak traced memory stays under the budget — the whole point of the
  streaming log is that metric memory is O(occupied sketch buckets),
  not O(requests), so the peak is set by in-flight simulation state
  and the 50 ms monitor series, both independent of request count.

``--live`` runs the same workload with the online observability layer
on (windowed latency sketches, incremental episode detection, budgeted
trace sampling, heartbeats) under the *same* byte budget: the windowed
sketches are O(occupied buckets) per live window and sampled traces
are capped by the retention budget, so live mode must not change the
memory class (docs/OBSERVABILITY.md).

Usage::

    python scripts/memory_smoke.py [--requests N] [--rate R]
                                   [--budget-mb MB] [--live]
"""

import argparse
import os
import sys
import time
import tracemalloc

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))


def run_streaming(requests, rate, live=False):
    from repro.core.evaluation import Scenario
    from repro.topology.configs import SystemConfig

    live_config = None
    if live:
        from repro.metrics.live import LiveConfig

        # sink=None: heartbeats accumulate in memory (worst case for
        # this gate); 1% head sampling under a 5k-trace budget
        live_config = LiveConfig(interval=10.0, sample_rate=0.01,
                                 trace_budget=5000, label="memory-smoke")
    duration = requests / rate + 20.0
    scenario = Scenario(
        SystemConfig(nx=0, seed=42, streaming=True),
        duration=duration, warmup=0.0, live=live_config,
    ).with_consolidation("app", period=7.0)
    scenario.with_open_loop(rate, max_requests=requests)
    return scenario.run()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200_000)
    parser.add_argument("--rate", type=float, default=1000.0)
    parser.add_argument("--budget-mb", type=float, default=256.0,
                        help="peak tracemalloc budget in MiB")
    parser.add_argument("--live", action="store_true",
                        help="fly with the online observability layer "
                             "on (heartbeats, windowed sketches, "
                             "budgeted trace sampling)")
    args = parser.parse_args(argv)

    started = time.time()
    tracemalloc.start()
    result = run_streaming(args.requests, args.rate, live=args.live)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    wall = time.time() - started

    log = result.log
    retained = len(log.records)
    retain_cap = max(20_000, args.requests // 5)
    peak_mb = peak / (1024 * 1024)
    mode = "live streaming" if args.live else "streaming"
    print(f"{mode} smoke: {len(log):,} requests in {wall:.1f} s "
          f"({len(log) / wall:,.0f} req/s wall), {retained:,} exact "
          f"records retained, peak {peak_mb:.1f} MiB "
          f"(budget {args.budget_mb:.0f} MiB)")

    failures = []
    if len(log) != args.requests:
        failures.append(f"issued {len(log)} of {args.requests} requests")
    if retained > retain_cap:
        failures.append(f"retained {retained} exact records "
                        f"(cap {retain_cap})")
    if peak_mb > args.budget_mb:
        failures.append(f"peak memory {peak_mb:.1f} MiB exceeds the "
                        f"{args.budget_mb:.0f} MiB budget")
    if args.live:
        telemetry = result.telemetry
        if telemetry is None or not telemetry.heartbeats:
            failures.append("live run produced no heartbeats")
        else:
            traces = telemetry.sampler.counters()
            print(f"  live: {len(telemetry.heartbeats)} heartbeats, "
                  f"{telemetry.detector.episode_count()} episodes, "
                  f"{traces['retained']:,}/{traces['budget']:,} traces "
                  f"retained ({traces['evicted_normal'] + traces['evicted_anomalous']:,} evicted), "
                  f"overhead {telemetry.heartbeats[-1]['overhead']['wall_share'] * 100:.1f}% wall")
            if traces["retained"] > traces["budget"]:
                failures.append(
                    f"sampler retained {traces['retained']} traces over "
                    f"the {traces['budget']} budget"
                )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
