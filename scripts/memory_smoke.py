#!/usr/bin/env python
"""CI memory-budget smoke for the streaming metric path (docs/SCALE.md).

Pushes a scaled-down million-client run (default 200k open-loop
requests) through the full nx=0 stack with ``RequestLog(streaming=True)``
under ``tracemalloc`` and asserts:

- the run issued exactly the requested number of requests;
- the retained-exact-record count stays within the retention bound
  (only VLRT/dropped/shed/failed requests keep records);
- peak traced memory stays under the budget — the whole point of the
  streaming log is that metric memory is O(occupied sketch buckets),
  not O(requests), so the peak is set by in-flight simulation state
  and the 50 ms monitor series, both independent of request count.

Usage::

    python scripts/memory_smoke.py [--requests N] [--rate R]
                                   [--budget-mb MB]
"""

import argparse
import os
import sys
import time
import tracemalloc

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))


def run_streaming(requests, rate):
    from repro.core.evaluation import Scenario
    from repro.topology.configs import SystemConfig

    duration = requests / rate + 20.0
    scenario = Scenario(
        SystemConfig(nx=0, seed=42, streaming=True),
        duration=duration, warmup=0.0,
    ).with_consolidation("app", period=7.0)
    scenario.with_open_loop(rate, max_requests=requests)
    return scenario.run()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200_000)
    parser.add_argument("--rate", type=float, default=1000.0)
    parser.add_argument("--budget-mb", type=float, default=256.0,
                        help="peak tracemalloc budget in MiB")
    args = parser.parse_args(argv)

    started = time.time()
    tracemalloc.start()
    result = run_streaming(args.requests, args.rate)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    wall = time.time() - started

    log = result.log
    retained = len(log.records)
    retain_cap = max(20_000, args.requests // 5)
    peak_mb = peak / (1024 * 1024)
    print(f"streaming smoke: {len(log):,} requests in {wall:.1f} s "
          f"({len(log) / wall:,.0f} req/s wall), {retained:,} exact "
          f"records retained, peak {peak_mb:.1f} MiB "
          f"(budget {args.budget_mb:.0f} MiB)")

    failures = []
    if len(log) != args.requests:
        failures.append(f"issued {len(log)} of {args.requests} requests")
    if retained > retain_cap:
        failures.append(f"retained {retained} exact records "
                        f"(cap {retain_cap})")
    if peak_mb > args.budget_mb:
        failures.append(f"peak memory {peak_mb:.1f} MiB exceeds the "
                        f"{args.budget_mb:.0f} MiB budget")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
