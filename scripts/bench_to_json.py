#!/usr/bin/env python
"""Run the substrate benchmarks and append a BENCH_substrate.json entry.

Thin wrapper over :mod:`repro.bench` for use without installing the
package: it puts ``src/`` on ``sys.path`` and delegates to the same CLI
as ``python -m repro bench``.

Usage::

    python scripts/bench_to_json.py [--smoke] [--only NAMES]
                                    [--label TEXT] [--out FILE]
"""

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.bench import main  # noqa: E402  (path bootstrap above)

if __name__ == "__main__":
    sys.exit(main())
